package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/keyword"
	"semkg/internal/query"
	"semkg/internal/serve"
)

// Service counters, exported through expvar (GET /debug/vars). The serving
// layer's own counters (caches, singleflight, admission) are published
// under "semkgd_serve"; see serve.Stats for the fields.
var (
	statSearches      = expvar.NewInt("semkgd_searches_total")
	statStreams       = expvar.NewInt("semkgd_streams_total")
	statStreamEvents  = expvar.NewInt("semkgd_stream_events_total")
	statBadRequests   = expvar.NewInt("semkgd_bad_requests_total")
	statOverloaded    = expvar.NewInt("semkgd_overloaded_total")
	statErrors        = expvar.NewInt("semkgd_errors_total")
	statIngests       = expvar.NewInt("semkgd_ingests_total")
	statIngestTriples = expvar.NewInt("semkgd_ingest_triples_total")
	statKeywords      = expvar.NewInt("semkgd_keywords_total")
	statSuggests      = expvar.NewInt("semkgd_suggests_total")

	// currentServe backs the semkgd_serve expvar; newMux swaps it so
	// httptest servers observe their own serving layer.
	currentServe atomic.Pointer[serve.Engine]
	// currentKeyword backs the semkgd_keyword expvar the same way.
	currentKeyword atomic.Pointer[keyword.Frontend]
)

func init() {
	expvar.Publish("semkgd_serve", expvar.Func(func() any {
		if s := currentServe.Load(); s != nil {
			return s.Stats()
		}
		return nil
	}))
	expvar.Publish("semkgd_keyword", expvar.Func(func() any {
		if f := currentKeyword.Load(); f != nil {
			return f.Stats()
		}
		return nil
	}))
}

// publishShardOnce guards the "semkgd_shard" expvar registration
// (expvar.Publish panics on duplicates; tests build many muxes).
var publishShardOnce sync.Once

// publishShardStats exports the sharded engine's partition shape and
// counters under the "semkgd_shard" expvar key. Reads go through the
// current serving engine, so the numbers track generation swaps from live
// ingestion (each Apply re-partitions the committed graph).
func publishShardStats() {
	publishShardOnce.Do(func() {
		expvar.Publish("semkgd_shard", expvar.Func(func() any {
			if s := currentServe.Load(); s != nil {
				if se, ok := s.Engine().(*core.ShardedEngine); ok {
					return se.Stats()
				}
			}
			return nil
		}))
	})
}

// publishDistOnce guards the "semkgd_dist" expvar registration.
var publishDistOnce sync.Once

// publishDistStats exports the distributed coordinator's replica policy
// counters (hedges, retries, failovers, shard errors) under the
// "semkgd_dist" expvar key.
func publishDistStats() {
	publishDistOnce.Do(func() {
		expvar.Publish("semkgd_dist", expvar.Func(func() any {
			if s := currentServe.Load(); s != nil {
				if de, ok := s.Engine().(*core.DistEngine); ok {
					return de.Stats()
				}
			}
			return nil
		}))
	})
}

// defaultMaxIngestBytes caps one /v1/ingest request body: the whole
// batch accumulates in one in-memory delta before it commits, so an
// unbounded body would let a single request exhaust the process.
const defaultMaxIngestBytes = 64 << 20

// server routes search traffic onto one serving engine.
type server struct {
	srv *serve.Engine
	// kw is the keyword front end over srv (query-graph assembly,
	// blending, autocomplete).
	kw *keyword.Frontend
	// maxIngestBytes bounds one ingest request body; <= 0 disables the
	// cap.
	maxIngestBytes int64
	// repl is the node's replication role (nil when replication is not
	// wired — bare newMux muxes in tests).
	repl *replState
}

// newMux builds the service's routing table:
//
//	POST /v1/search   batch search, JSON result (429 when shed)
//	POST /v1/batch    grouped search: N queries, shared sub-searches;
//	                  JSON per-query results, or tagged NDJSON with
//	                  ?stream=1
//	POST /v1/stream   streaming search, NDJSON events (429 when shed)
//	POST /v1/keyword  keyword search: query-graph assembly + blended
//	                  top-k; JSON result, or NDJSON with ?stream=1
//	GET  /v1/suggest  autocomplete over the name indexes (?q=, ?limit=)
//	POST /v1/ingest   NDJSON triples, batched delta commit (409 when
//	                  racing another commit)
//	GET  /healthz     liveness + graph shape + generation
//	GET  /debug/vars  expvar counters
func newMux(srv *serve.Engine) *http.ServeMux {
	return newMuxLimits(srv, defaultMaxIngestBytes)
}

// newMuxLimits is newMux with an explicit ingest body cap (semkgd wires
// -max-ingest-bytes through it; tests use small caps).
func newMuxLimits(srv *serve.Engine, maxIngestBytes int64) *http.ServeMux {
	return newMuxReplicated(srv, maxIngestBytes, nil)
}

// newMuxReplicated is the full routing table, including the replication
// endpoints:
//
//	GET  /v1/replicate  NDJSON replication stream (primaries only)
//	POST /v1/promote    flip a follower to primary (warm failover)
//
// repl may be nil (replication not wired); the replication endpoints
// then answer 503.
func newMuxReplicated(srv *serve.Engine, maxIngestBytes int64, repl *replState) *http.ServeMux {
	currentServe.Store(srv)
	if repl != nil {
		currentRepl.Store(repl)
		publishReplicaStats()
	}
	kw := keyword.New(srv, keyword.Config{})
	currentKeyword.Store(kw)
	s := &server{srv: srv, kw: kw, maxIngestBytes: maxIngestBytes, repl: repl}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("POST /v1/keyword", s.handleKeyword)
	mux.HandleFunc("GET /v1/suggest", s.handleSuggest)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/replicate", s.handleReplicate)
	mux.HandleFunc("POST /v1/promote", s.handlePromote)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// decodeRequest parses and validates a search request. A non-nil error has
// already been written to w as a 400.
func (s *server) decodeRequest(w http.ResponseWriter, r *http.Request) (ok bool, q *query.Graph, opts core.Options) {
	g, opts, err := api.DecodeSearchRequest(r.Body)
	if err != nil {
		s.badRequest(w, err)
		return false, nil, opts
	}
	if err := g.Validate(); err != nil {
		s.badRequest(w, err)
		return false, nil, opts
	}
	if err := opts.Validate(); err != nil {
		s.badRequest(w, err)
		return false, nil, opts
	}
	return true, g, opts
}

func (s *server) badRequest(w http.ResponseWriter, err error) {
	statBadRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

// searchError classifies a serving-layer error: caller-caused errors
// (core.BadRequestError) are 400s, admission shedding (OverloadedError) is
// a 429 with a Retry-After header, everything else is a 500.
func (s *server) searchError(w http.ResponseWriter, err error) {
	var bad core.BadRequestError
	if errors.As(err, &bad) {
		s.badRequest(w, err)
		return
	}
	var over *serve.OverloadedError
	if errors.As(err, &over) {
		statOverloaded.Add(1)
		// Retry-After is whole seconds, rounded up so clients never retry
		// before the projected wait has elapsed.
		secs := int64((over.RetryAfter + 999_999_999) / 1_000_000_000)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error":       err.Error(),
			"retry_after": strconv.FormatInt(secs, 10),
		})
		return
	}
	var unavail *core.ShardUnavailableError
	if errors.As(err, &unavail) {
		// A distributed search lost a whole shard past the retry budget:
		// an upstream failure, not a caller or coordinator bug.
		statErrors.Add(1)
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	statErrors.Add(1)
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	ok, q, opts := s.decodeRequest(w, r)
	if !ok {
		return
	}
	statSearches.Add(1)
	res, err := s.srv.Search(r.Context(), q, opts)
	if err != nil {
		s.searchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ResultFrom(res))
}

func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	ok, q, opts := s.decodeRequest(w, r)
	if !ok {
		return
	}
	statStreams.Add(1)
	// r.Context() makes a dropped client cancel its participation; the
	// underlying pipeline is cancelled only when no other request shares
	// it. Admission shedding surfaces here, before the 200 header.
	st, err := s.srv.Stream(r.Context(), q, opts)
	if err != nil {
		s.searchError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat reverse-proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for ev := range st.Events() {
		line, err := api.EncodeEvent(ev)
		if err != nil {
			statErrors.Add(1)
			continue
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return // client gone; context cancellation winds down the search
		}
		statStreamEvents.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleKeyword answers POST /v1/keyword: keywords assemble into
// candidate query graphs, the top candidates execute through the serving
// layer (caching, singleflight and admission control all apply per
// candidate), and the per-candidate top-k lists blend into one
// deduplicated ranking. ?stream=1 upgrades the response to NDJSON: an
// assembly event, interleaved engine events tagged with their candidate,
// and a terminal blended result.
func (s *server) handleKeyword(w http.ResponseWriter, r *http.Request) {
	req, err := api.DecodeKeywordRequest(r.Body)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	statKeywords.Add(1)
	if v := r.URL.Query().Get("stream"); v != "" && v != "0" && v != "false" {
		s.streamKeyword(w, r, req)
		return
	}
	resp, err := s.kw.Search(r.Context(), req.Keywords, req.Options.Core(), req.MaxCandidates)
	if err != nil {
		s.searchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, keyword.WireResult(resp))
}

// streamKeyword is the NDJSON variant of handleKeyword.
func (s *server) streamKeyword(w http.ResponseWriter, r *http.Request, req api.KeywordRequest) {
	ch, err := s.kw.Stream(r.Context(), req.Keywords, req.Options.Core(), req.MaxCandidates)
	if err != nil {
		s.searchError(w, err)
		return
	}
	statStreams.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat reverse-proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for ev := range ch {
		line, err := keyword.EncodeEvent(ev)
		if err != nil {
			statErrors.Add(1)
			continue
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return // client gone; context cancellation winds down the searches
		}
		statStreamEvents.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSuggest answers GET /v1/suggest?q=frag&limit=N: autocomplete
// straight from the name/initials/prefix indexes. It never runs a search.
func (s *server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.badRequest(w, fmt.Errorf("missing required query parameter %q", "q"))
		return
	}
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			s.badRequest(w, fmt.Errorf("bad limit %q (must be a non-negative integer)", l))
			return
		}
		limit = n
	}
	statSuggests.Add(1)
	writeJSON(w, http.StatusOK, keyword.WireSuggestions(s.kw.Suggest(q, limit)))
}

// handleIngest applies one NDJSON batch of triples as a single delta
// commit: every line parses and validates before anything is published,
// so a malformed line rejects the whole batch (400) and the served graph
// is unchanged. A successful batch swaps the engine generation exactly
// once, however many triples it carries. A concurrent commit that
// supersedes this one's base graph is a 409 — the client re-sends the
// batch, which then applies against the newer generation.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	statIngests.Add(1)
	// Followers are read replicas: their graph is the primary's, applied
	// through the replication stream. Direct writes would fork it.
	if s.repl != nil && s.repl.role() == "follower" {
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": "read-only follower; ingest on the primary"})
		return
	}
	// A distributed coordinator serves immutable remote shard snapshots;
	// committing a delta here would fork the coordinator's graph from the
	// shards' and silently break search exactness.
	if _, ok := s.srv.Engine().(*core.DistEngine); ok {
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": "read-only coordinator; rebuild shard snapshots from the new graph and restart"})
		return
	}
	if s.maxIngestBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxIngestBytes)
	}
	d := s.srv.NewDelta()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo, triples := 0, 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		tr, err := api.DecodeIngestTriple(line)
		if err != nil {
			// A body-size overrun truncates the final line, which then
			// fails to parse; report the cap, not the parse artifact.
			if s.ingestTooLarge(w, sc) {
				return
			}
			s.badRequest(w, fmt.Errorf("line %d: %w", lineNo, err))
			return
		}
		if err := d.ApplyTriple(tr.S, tr.P, tr.O); err != nil {
			s.badRequest(w, fmt.Errorf("line %d: %w", lineNo, err))
			return
		}
		triples++
	}
	if err := sc.Err(); err != nil {
		if s.ingestTooLarge(w, sc) {
			return
		}
		s.badRequest(w, fmt.Errorf("reading ingest body: %w", err))
		return
	}
	// On a replicated primary the commit goes through the replication
	// log, so followers receive exactly the statements this batch
	// applied; otherwise it applies directly to the serving layer.
	apply := s.srv.Apply
	if s.repl != nil {
		if p := s.repl.currentPrimary(); p != nil {
			apply = p.Commit
		}
	}
	info, err := apply(d)
	if err != nil {
		if errors.Is(err, serve.ErrStaleDelta) {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		statErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	statIngestTriples.Add(int64(triples))
	writeJSON(w, http.StatusOK, api.IngestResult{
		Triples:    triples,
		AddedNodes: info.AddedNodes,
		AddedEdges: info.AddedEdges,
		Retyped:    info.Retyped,
		Nodes:      info.Nodes,
		Edges:      info.Edges,
		Generation: info.Generation,
		CommitTime: api.Duration(info.CommitTime),
		BuildTime:  api.Duration(info.BuildTime),
	})
}

// ingestTooLarge writes a 413 and reports true when the scanner stopped
// because the request body exceeded the ingest cap.
func (s *server) ingestTooLarge(w http.ResponseWriter, sc *bufio.Scanner) bool {
	var tooBig *http.MaxBytesError
	if !errors.As(sc.Err(), &tooBig) {
		return false
	}
	writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
		"error": fmt.Sprintf("ingest body exceeds %d bytes; split the batch", tooBig.Limit),
	})
	return true
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	eng := s.srv.Engine()
	g := eng.Graph()
	resp := map[string]any{
		"status":     "ok",
		"nodes":      g.NumNodes(),
		"edges":      g.NumEdges(),
		"predicates": g.NumPredicates(),
		"generation": s.srv.Generation(),
	}
	switch e := eng.(type) {
	case *core.ShardedEngine:
		resp["shards"] = e.Set().Len()
	case *core.DistEngine:
		resp["shards"] = len(e.Hosts())
		resp["distributed"] = true
	case *core.ReshardingEngine:
		if se := e.Sharded(); se != nil {
			resp["shards"] = se.Set().Len()
		} else {
			resp["resharding"] = true
		}
	}
	if s.repl != nil {
		resp["replication"] = s.repl.healthz()
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past this point mean the client is gone; the status
	// line is already out, so there is nothing useful left to report.
	_ = json.NewEncoder(w).Encode(v)
}
