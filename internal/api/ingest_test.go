package api

import "testing"

func TestIngestTripleRoundTrip(t *testing.T) {
	in := IngestTriple{S: "BMW_i8", P: "assembly", O: "Germany"}
	line, err := EncodeIngestTriple(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeIngestTriple(line)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestDecodeIngestTripleStrict(t *testing.T) {
	cases := []struct{ name, line string }{
		{"unknown field", `{"s":"a","p":"b","o":"c","x":1}`},
		{"trailing data", `{"s":"a","p":"b","o":"c"}{"s":"d","p":"e","o":"f"}`},
		{"empty subject", `{"s":"","p":"b","o":"c"}`},
		{"missing object", `{"s":"a","p":"b"}`},
		{"not an object", `["a","b","c"]`},
	}
	for _, tc := range cases {
		if _, err := DecodeIngestTriple([]byte(tc.line)); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.line)
		}
	}
}
