// Package tbq implements the response-time-bounded approximate optimization
// of Section VI (Algorithms 2 and 3): every sub-query search runs in the
// eager mode (matches collected the moment they are discovered, Algorithm 2),
// a synchronized time estimator projects the total query time
//
//	T̂ = max{T_A*} + Σ|M̂_i|·t            (Algorithm 3)
//
// and the searches stop as soon as T̂ reaches the alert threshold T·r%, so
// that the TA assembly of the collected non-optimal match sets M̂_i finishes
// within the user-specified bound T. Given enough time the eager sets cover
// the optimal sets (Lemmas 6-7), so the result converges to the exact top-k
// (Theorem 4).
package tbq

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/ta"
)

// Clock abstracts wall time so tests can run deterministically.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// StepClock is a deterministic Clock advancing by Step on every Now call.
// With it, a time bound T admits exactly T/Step clock observations, which
// makes the time-bounded search reproducible in tests.
type StepClock struct {
	mu   sync.Mutex
	t    time.Time
	Step time.Duration
}

// Now returns the current logical time and advances it by Step.
func (c *StepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.Step)
	return c.t
}

// Config controls a time-bounded run.
type Config struct {
	// Bound is the user-specified time bound T (the desired SRT).
	Bound time.Duration
	// AlertRatio is r% of Algorithm 3; search stops when the estimated
	// total time reaches Bound*AlertRatio. Default 0.8 (the paper's 80%).
	AlertRatio float64
	// PerMatchTA is the empirical time t for processing one collected
	// match during TA assembly. Zero uses a calibrated default.
	PerMatchTA time.Duration
	// Clock abstracts time; nil uses the wall clock.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.AlertRatio <= 0 || c.AlertRatio > 1 {
		c.AlertRatio = 0.8
	}
	if c.PerMatchTA <= 0 {
		c.PerMatchTA = defaultPerMatch
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// defaultPerMatch is a conservative empirical t; Calibrate refines it.
const defaultPerMatch = 500 * time.Nanosecond

// Calibrate measures the per-match TA assembly cost t on a synthetic
// workload (the paper's "simulated TA based assembly").
func Calibrate() time.Duration {
	const matches = 4096
	mk := func() []astar.Match {
		ms := make([]astar.Match, matches)
		for i := range ms {
			ms[i] = astar.Match{Nodes: []kg.NodeID{kg.NodeID(i % 97)}, PSS: 1 - float64(i)/matches}
		}
		return ms
	}
	start := time.Now()
	ta.Assemble([]ta.Stream{
		&ta.SliceStream{Matches: mk()},
		&ta.SliceStream{Matches: mk()},
	}, 16)
	t := time.Since(start) / (2 * matches)
	if t <= 0 {
		t = defaultPerMatch
	}
	return t
}

// Result is the outcome of a time-bounded run.
type Result struct {
	Finals []ta.Final
	// Elapsed is the total observed duration of search plus assembly.
	Elapsed time.Duration
	// Exhausted reports that every search ran dry before the alert
	// threshold: the result is then the exact top-k, not an approximation.
	Exhausted bool
	// Collected is |M̂_i| per sub-query at assembly time.
	Collected []int
}

// Hooks receives phase notifications during a time-bounded run, so a
// streaming consumer can observe the run as it unfolds. Every field is
// optional (nil = no notification). OnCollected is invoked from the
// per-sub-query search goroutines and must be safe for concurrent use;
// the remaining hooks fire from at most one goroutine at a time.
type Hooks struct {
	// OnCollected fires when sub-query sub's eager set M̂_sub grows to
	// total distinct answer entities.
	OnCollected func(sub, total int)
	// OnSubDone fires when sub-query sub's eager search ends (exhausted
	// or stopped), with the final |M̂_sub|. Like OnCollected it is
	// invoked from the search goroutines.
	OnSubDone func(sub, total int)
	// OnAlert fires once, when Algorithm 3's estimate T̂ = elapsed +
	// Σ|M̂_i|·t first reaches the alert threshold Bound·AlertRatio.
	// It does not fire on context cancellation or exhaustion.
	OnAlert func(elapsed, projected time.Duration)
	// OnAssembly fires when the search phase has ended and the TA
	// assembly of the collected sets begins; collected holds |M̂_i|.
	OnAssembly func(collected []int)
	// OnProvisional fires after every TA assembly round with the current
	// provisional top-k and its L_k/U_max bounds (Theorem 3's state).
	OnProvisional func(finals []ta.Final, lk, umax float64, round int)
}

// Estimator is Algorithm 3's synchronized time estimate for a set of
// concurrent eager searches: T̂ = elapsed search time (the searches run
// concurrently, so max{T_A*} is the shared wall elapsed) plus the
// projected assembly cost Σ|M̂_i|·t over every match counted so far. It
// is shared by the single-engine run (one searcher per sub-query) and
// the sharded run (one searcher per shard and sub-query), so the alert
// policy cannot diverge between the two. Safe for concurrent use.
type Estimator struct {
	cfg     Config
	ctx     context.Context
	onAlert func(elapsed, projected time.Duration)
	start   time.Time
	total   atomic.Int64
	stopped atomic.Bool
}

// NewEstimator starts the clock (Config defaults applied: r% = 0.8,
// calibrated t, wall clock). onAlert, when non-nil, fires exactly once —
// when the estimate first reaches the alert threshold Bound·r%, not on
// cancellation.
func NewEstimator(ctx context.Context, cfg Config, onAlert func(elapsed, projected time.Duration)) *Estimator {
	cfg = cfg.withDefaults()
	return &Estimator{cfg: cfg, ctx: ctx, onAlert: onAlert, start: cfg.Clock.Now()}
}

// Collected records one newly collected distinct match (it raises T̂ by
// the per-match assembly cost t).
func (e *Estimator) Collected() { e.total.Add(1) }

// Stop reports whether the search phase must end: the context was
// cancelled, or the estimate reached the alert threshold. Once true it
// stays true.
func (e *Estimator) Stop() bool {
	if e.stopped.Load() {
		return true
	}
	if e.ctx.Err() != nil {
		e.stopped.Store(true)
		return true
	}
	elapsed := e.cfg.Clock.Now().Sub(e.start)
	that := elapsed + time.Duration(e.total.Load())*e.cfg.PerMatchTA
	if float64(that) >= float64(e.cfg.Bound)*e.cfg.AlertRatio {
		if e.stopped.CompareAndSwap(false, true) && e.onAlert != nil {
			e.onAlert(elapsed, that)
		}
		return true
	}
	return false
}

// Elapsed returns the time consumed since the estimator started, on its
// configured clock.
func (e *Estimator) Elapsed() time.Duration { return e.cfg.Clock.Now().Sub(e.start) }

// Run executes the time-bounded query: searchers (one per sub-query graph,
// already positioned at their anchors) run concurrently in eager mode until
// Algorithm 3's estimate reaches the alert threshold, then the collected
// match sets are assembled into the approximate top-k.
//
// ctx cancellation stops the search phase early (the assembly still runs on
// whatever was collected).
func Run(ctx context.Context, searchers []*astar.Searcher, k int, cfg Config) Result {
	return RunHooked(ctx, searchers, k, cfg, Hooks{})
}

// RunHooked is Run with phase notifications threaded through hooks. With
// the zero Hooks it behaves exactly like Run.
func RunHooked(ctx context.Context, searchers []*astar.Searcher, k int, cfg Config, hooks Hooks) Result {
	est := NewEstimator(ctx, cfg, hooks.OnAlert)
	stop := est.Stop

	type collected struct {
		best      map[kg.NodeID]astar.Match
		exhausted bool
	}
	results := make([]collected, len(searchers))
	var wg sync.WaitGroup
	for i, s := range searchers {
		wg.Add(1)
		go func(i int, s *astar.Searcher) {
			defer wg.Done()
			best := make(map[kg.NodeID]astar.Match)
			exhausted := s.RunEager(stop, func(m astar.Match) bool {
				if old, ok := best[m.End()]; !ok || m.PSS > old.PSS {
					if !ok {
						est.Collected()
						if hooks.OnCollected != nil {
							hooks.OnCollected(i, len(best)+1)
						}
					}
					best[m.End()] = m
				}
				return true
			})
			results[i] = collected{best: best, exhausted: exhausted}
			if hooks.OnSubDone != nil {
				hooks.OnSubDone(i, len(best))
			}
		}(i, s)
	}
	wg.Wait()

	res := Result{Exhausted: true, Collected: make([]int, len(searchers))}
	streams := make([]ta.Stream, len(searchers))
	for i, c := range results {
		ms := make([]astar.Match, 0, len(c.best))
		for _, m := range c.best {
			ms = append(ms, m)
		}
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].PSS != ms[b].PSS {
				return ms[a].PSS > ms[b].PSS
			}
			return ms[a].End() < ms[b].End()
		})
		streams[i] = &ta.SliceStream{Matches: ms}
		res.Collected[i] = len(ms)
		if !c.exhausted {
			res.Exhausted = false
		}
	}
	if hooks.OnAssembly != nil {
		hooks.OnAssembly(res.Collected)
	}
	asm := ta.NewAssembler(streams, k)
	var onRound func(int)
	if hooks.OnProvisional != nil {
		onRound = func(r int) {
			lk, umax := asm.Bounds()
			hooks.OnProvisional(asm.Provisional(), lk, umax, r)
		}
	}
	res.Finals = asm.Run(onRound)
	res.Elapsed = est.Elapsed()
	return res
}
