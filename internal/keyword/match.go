package keyword

import (
	"sort"

	"semkg/internal/kg"
	"semkg/internal/strutil"
)

// Kind classifies what a keyword interpretation maps to in the graph.
type Kind string

// The three element kinds a keyword can resolve to.
const (
	KindEntity    Kind = "entity"
	KindType      Kind = "type"
	KindPredicate Kind = "predicate"
)

// Via records which index path produced an interpretation.
type Via string

// The three match paths, in decreasing intrinsic quality.
const (
	ViaExact    Via = "exact"
	ViaPrefix   Via = "prefix"
	ViaInitials Via = "initials"
)

// Match qualities per via: an exact normalized hit is certain; a proper
// prefix scales with how much of the name was typed; initials are the
// loosest (many names share initials).
const (
	qualityExact    = 1.0
	qualityPrefix   = 0.85
	qualityInitials = 0.7
)

// Interp is one interpretation of a keyword as a graph element, produced
// by the exact/prefix/initials name indexes (entities and types) or the
// predicate vocabulary. Count is the element's selectivity mass: matching
// nodes for an entity, type cardinality for a type, edge count for a
// predicate.
type Interp struct {
	Kind    Kind
	Via     Via
	Name    string  // the graph's spelling of the element
	Quality float64 // match quality in (0,1]
	Count   int

	// Nodes holds the matched entity nodes (KindEntity only; capped by
	// Config.EvidenceNodes consumers, not here).
	Nodes []kg.NodeID
	// Type is the matched type (KindType only).
	Type kg.TypeID
	// Pred is the matched predicate (KindPredicate only).
	Pred kg.PredID
}

// kindRank orders interpretation kinds for deterministic tie-breaks:
// entities anchor assemblies, so they win ties.
func kindRank(k Kind) int {
	switch k {
	case KindEntity:
		return 0
	case KindType:
		return 1
	default:
		return 2
	}
}

// matchKeyword maps one normalized keyword to its ranked interpretations.
// Entities and types resolve through the exact, proper-prefix and
// initials indexes; predicates by normalized-name scan over the (small)
// predicate vocabulary. At most maxInterps interpretations survive,
// ranked by quality desc, then selectivity (smaller Count first), then
// kind, then name.
func matchKeyword(g *kg.Graph, norm string, maxInterps int) []Interp {
	var out []Interp

	// Entities: exact, then grouped prefix/initials (one interpretation
	// per distinct normalized name, so "ger" → germany counts once however
	// many Germany nodes exist).
	if ids := g.NodesByNormName(norm); len(ids) > 0 {
		out = append(out, Interp{
			Kind: KindEntity, Via: ViaExact, Name: g.NodeName(ids[0]),
			Quality: qualityExact, Count: len(ids), Nodes: ids,
		})
	}
	if len(norm) >= 2 {
		out = append(out, groupEntities(g, g.NodesByProperNormPrefix(norm), ViaPrefix, norm)...)
		out = append(out, groupEntities(g, g.NodesByInitials(norm), ViaInitials, norm)...)
	}

	// Types.
	for _, t := range g.TypesByNormName(norm) {
		out = append(out, Interp{
			Kind: KindType, Via: ViaExact, Name: g.TypeName(t),
			Quality: qualityExact, Count: len(g.NodesOfType(t)), Type: t,
		})
	}
	if len(norm) >= 2 {
		for _, t := range g.TypesByProperNormPrefix(norm) {
			name := g.TypeName(t)
			out = append(out, Interp{
				Kind: KindType, Via: ViaPrefix, Name: name,
				Quality: prefixQuality(norm, strutil.Normalize(name)),
				Count:   len(g.NodesOfType(t)), Type: t,
			})
		}
		for _, t := range g.TypesByInitials(norm) {
			out = append(out, Interp{
				Kind: KindType, Via: ViaInitials, Name: g.TypeName(t),
				Quality: qualityInitials, Count: len(g.NodesOfType(t)), Type: t,
			})
		}
	}

	// Predicates: the vocabulary is small (tens, not millions), so a scan
	// is cheaper than an index.
	for pi, pname := range g.Predicates() {
		pn := strutil.Normalize(pname)
		p := kg.PredID(pi)
		switch {
		case pn == norm:
			out = append(out, Interp{
				Kind: KindPredicate, Via: ViaExact, Name: pname,
				Quality: qualityExact, Count: g.PredCount(p), Pred: p,
			})
		case len(norm) >= 2 && len(pn) > len(norm) && pn[:len(norm)] == norm:
			out = append(out, Interp{
				Kind: KindPredicate, Via: ViaPrefix, Name: pname,
				Quality: prefixQuality(norm, pn), Count: g.PredCount(p), Pred: p,
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Quality != b.Quality {
			return a.Quality > b.Quality
		}
		if a.Count != b.Count {
			return a.Count < b.Count
		}
		if kindRank(a.Kind) != kindRank(b.Kind) {
			return kindRank(a.Kind) < kindRank(b.Kind)
		}
		return a.Name < b.Name
	})
	if len(out) > maxInterps {
		out = out[:maxInterps]
	}
	return out
}

// groupEntities folds a prefix/initials id list into one interpretation
// per distinct normalized name, deterministically ordered by name. The
// per-group id lists keep ascending NodeID order (the index emits
// per-name runs already sorted).
func groupEntities(g *kg.Graph, ids []kg.NodeID, via Via, norm string) []Interp {
	if len(ids) == 0 {
		return nil
	}
	groups := make(map[string][]kg.NodeID)
	spelling := make(map[string]string)
	for _, id := range ids {
		name := g.NodeName(id)
		n := strutil.Normalize(name)
		groups[n] = append(groups[n], id)
		if _, ok := spelling[n]; !ok {
			spelling[n] = name
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Interp, 0, len(keys))
	for _, k := range keys {
		nodes := groups[k]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		q := qualityInitials
		if via == ViaPrefix {
			q = prefixQuality(norm, k)
		}
		out = append(out, Interp{
			Kind: KindEntity, Via: via, Name: spelling[k],
			Quality: q, Count: len(nodes), Nodes: nodes,
		})
	}
	return out
}

// prefixQuality scales the prefix-match quality by how much of the full
// normalized name the keyword covers.
func prefixQuality(prefix, full string) float64 {
	if len(full) == 0 {
		return qualityPrefix
	}
	return qualityPrefix * float64(len(prefix)) / float64(len(full))
}
