package bench

import "testing"

// TestRunBatchShape runs the batch-sharing experiment end to end and
// checks the acceptance properties: the shared configuration actually
// shares (SubHits > 0 on an overlapping workload), the independent
// configuration never does, and sharing does not lose throughput.
// Skipped in -short mode (the environment trains an embedding).
func TestRunBatchShape(t *testing.T) {
	env := testEnv(t)
	res, err := RunBatch(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("batch rows = %d, want 2", len(res.Rows))
	}
	byName := map[string]BatchRow{}
	for _, row := range res.Rows {
		byName[row.Config] = row
		if row.P50Us <= 0 || row.QPS <= 0 || row.Requests == 0 {
			t.Errorf("%s: non-positive measurements: %+v", row.Config, row)
		}
	}

	independent, ok := byName["independent"]
	if !ok {
		t.Fatal("missing independent configuration")
	}
	if independent.SubHits != 0 || independent.SubMisses != 0 {
		t.Errorf("disabled sharing still counted: %+v", independent)
	}

	shared, ok := byName["shared"]
	if !ok {
		t.Fatal("missing shared configuration")
	}
	if shared.SubHits == 0 {
		t.Errorf("overlapping workload shared no sub-searches: %+v", shared)
	}
	if shared.SubMisses == 0 {
		t.Errorf("shared configuration never built a sub-search: %+v", shared)
	}
	// Both configurations disable the result cache, so every item either
	// runs the pipeline or joins an identical in-flight item of its own
	// batch (singleflight).
	if shared.PipelineRuns+shared.FlightShared != uint64(shared.Requests) {
		t.Errorf("shared accounting: runs %d + flight-shared %d != requests %d",
			shared.PipelineRuns, shared.FlightShared, shared.Requests)
	}

	if res.QPSGain <= 0 || res.P50Speedup <= 0 {
		t.Fatalf("gains not computed: %+v", res)
	}
	// Sharing skips re-enumeration of repeated sub-queries; it must not
	// be slower than independent execution on this heavily overlapping
	// mix. (The artifact records the measured gain itself.)
	if res.QPSGain < 0.9 {
		t.Errorf("sharing lost throughput: gain %.2fx (independent %.0f QPS, shared %.0f QPS)",
			res.QPSGain, independent.QPS, shared.QPS)
	}

	if res.Render().String() == "" {
		t.Error("empty render")
	}
}
