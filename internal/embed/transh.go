package embed

import (
	"context"
	"fmt"
	"math/rand"

	"semkg/internal/kg"
)

// TrainTransH trains a TransH model (Wang et al., AAAI 2014): each relation
// has a hyperplane normal w_r and a translation d_r; entities are projected
// onto the hyperplane before translation, letting one entity play different
// roles under different relations. The predicate space is built from the
// translation vectors d_r.
//
// The paper selects TransE for its experiments; TransH is provided as the
// ablation alternative referenced in its related-work discussion
// (Section IV-A cites [55]-[59]).
func TrainTransH(ctx context.Context, g *kg.Graph, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n, p, m := g.NumNodes(), g.NumPredicates(), g.NumEdges()
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("embed: cannot train on empty graph (%d nodes, %d edges)", n, m)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	model := &Model{
		Entities:  randomVectors(rng, n, cfg.Dim),
		Relations: randomVectors(rng, p, cfg.Dim),
		Cfg:       cfg,
	}
	normals := randomVectors(rng, p, cfg.Dim)
	for _, v := range normals {
		Normalize(v)
	}
	for _, v := range model.Relations {
		Normalize(v)
	}

	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	proj := func(e, w Vector, out Vector) {
		// out = e - (wᵀe) w
		wd := Dot(w, e)
		for i := range out {
			out[i] = e[i] - wd*w[i]
		}
	}
	ph := make(Vector, cfg.Dim)
	pt := make(Vector, cfg.Dim)
	pch := make(Vector, cfg.Dim)
	pct := make(Vector, cfg.Dim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return model, err
		}
		for _, v := range model.Entities {
			Normalize(v)
		}
		for _, v := range normals {
			Normalize(v)
		}
		rng.Shuffle(m, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for _, ei := range order {
			e := g.EdgeAt(kg.EdgeID(ei))
			h, r, t := int(e.Src), int(e.Pred), int(e.Dst)
			ch, ct := h, t
			if rng.Intn(2) == 0 {
				ch = rng.Intn(n)
			} else {
				ct = rng.Intn(n)
			}
			w, dr := normals[r], model.Relations[r]
			proj(model.Entities[h], w, ph)
			proj(model.Entities[t], w, pt)
			proj(model.Entities[ch], w, pch)
			proj(model.Entities[ct], w, pct)

			var dPos, dNeg float64
			for i := range dr {
				dp := ph[i] + dr[i] - pt[i]
				dn := pch[i] + dr[i] - pct[i]
				dPos += dp * dp
				dNeg += dn * dn
			}
			loss := cfg.Margin + dPos - dNeg
			if loss <= 0 {
				continue
			}
			epochLoss += loss
			lr := cfg.LearningRate
			// Approximate gradients: treat projections as constants with
			// respect to w (standard simplification that works well at this
			// scale) and push updates through the projected coordinates.
			for i := range dr {
				gp := 2 * (ph[i] + dr[i] - pt[i])
				gn := 2 * (pch[i] + dr[i] - pct[i])
				model.Entities[h][i] -= lr * gp
				model.Entities[t][i] += lr * gp
				model.Entities[ch][i] += lr * gn
				model.Entities[ct][i] -= lr * gn
				dr[i] -= lr * (gp - gn)
				w[i] -= lr * 0.1 * (gp - gn) * dr[i] // soft orthogonality pressure
			}
		}
		model.EpochLoss = append(model.EpochLoss, epochLoss/float64(m))
	}
	for _, v := range model.Entities {
		Normalize(v)
	}
	return model, nil
}
