package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/serve"
)

// shardedTestServer serves the motivating example through a 2-shard
// scatter-gather engine, as `semkgd -shards 2` would.
func shardedTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	base := testEngine(t).(*core.Engine)
	se, err := core.NewShardedEngine(base, core.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(serve.New(se, serve.Config{})))
	t.Cleanup(srv.Close)
	return srv
}

// TestShardedSearchEndpoint: the HTTP surface is oblivious to sharding —
// same request, same answers as the single-engine server.
func TestShardedSearchEndpoint(t *testing.T) {
	single := searchEntities(t, testServer(t, serve.Config{}))
	sharded := searchEntities(t, shardedTestServer(t))
	if len(sharded) != len(single) {
		t.Fatalf("sharded answers %v, single %v", sharded, single)
	}
	for e := range single {
		if !sharded[e] {
			t.Fatalf("entity %q missing from sharded answers %v", e, sharded)
		}
	}
}

// TestShardedStreamEndpoint: the NDJSON stream carries per-shard progress
// attribution and ends with a result line.
func TestShardedStreamEndpoint(t *testing.T) {
	srv := shardedTestServer(t)
	resp := post(t, srv, "/v1/stream", strings.Replace(q117Body, "%s", "", 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sawShard, sawResult := false, false
	for sc.Scan() {
		ev, err := api.DecodeEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case api.EventProgress:
			if ev.Shard > 0 {
				sawShard = true
			}
		case api.EventResult:
			sawResult = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawShard {
		t.Fatal("no progress line carried a shard attribution")
	}
	if !sawResult {
		t.Fatal("stream ended without a result line")
	}
}

// TestShardedHealthz reports the shard count.
func TestShardedHealthz(t *testing.T) {
	srv := shardedTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["shards"] != float64(2) {
		t.Fatalf("healthz shards = %v, want 2", body["shards"])
	}
}
