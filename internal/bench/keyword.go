// Keyword experiment: the cost and quality of the keyword front end
// (internal/keyword) against the structured baseline it assembles into.
// Keywords are derived from the generated Simple workload ("<focus type>
// <predicate> <anchor entity>"), so every input has a ground-truth
// validation set. Three measurements per environment:
//
//   - assembly latency alone (tokenize → match → enumerate → score);
//   - end-to-end latency of blended keyword search vs the equivalent
//     structured query through the same serving layer (caches disabled,
//     so every number is a real pipeline execution);
//   - answer quality (precision/recall/F1 against the workload truth)
//     of blended multi-candidate search vs executing only the single
//     best candidate vs the hand-written structured query.
//
// Run via `go run ./cmd/kgbench -exp keyword` (writes BENCH_keyword.json).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"semkg/internal/core"
	"semkg/internal/keyword"
	"semkg/internal/metrics"
	"semkg/internal/query"
	"semkg/internal/serve"
)

// KeywordRow is one measured workload slice.
type KeywordRow struct {
	Workload string `json:"workload"`
	Queries  int    `json:"queries"`
	Rounds   int    `json:"rounds"`
	// Assembly latency percentiles in microseconds (keyword workloads).
	AssemblyP50Us float64 `json:"assembly_p50_us,omitempty"`
	AssemblyP95Us float64 `json:"assembly_p95_us,omitempty"`
	// End-to-end latency percentiles in microseconds.
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	// Candidate statistics (keyword workloads): mean assembled and mean
	// executed candidate queries per input.
	CandidatesMean float64 `json:"candidates_mean,omitempty"`
	ExecutedMean   float64 `json:"executed_mean,omitempty"`
	// Quality against the workload validation sets.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// KeywordBenchResult is the experiment artifact (BENCH_keyword.json).
type KeywordBenchResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	Rows []KeywordRow `json:"workloads"`
}

// keywordCase is one benchmark input: derived keywords plus the
// structured query and truth they came from.
type keywordCase struct {
	input string
	gq    *query.Graph
	truth []string
}

// keywordCases derives keyword inputs from the Simple workload: the focus
// type, every distinct predicate, and every anchor entity of each query,
// in document order.
func keywordCases(env *Env, limit int) []keywordCase {
	var out []keywordCase
	for _, gq := range env.Dataset.Simple {
		if limit > 0 && len(out) >= limit {
			break
		}
		var words []string
		for _, n := range gq.Graph.Nodes {
			if n.Name == "" && n.Type != "" {
				words = append(words, n.Type)
			}
		}
		seen := map[string]bool{}
		for _, e := range gq.Graph.Edges {
			if !seen[e.Predicate] {
				seen[e.Predicate] = true
				words = append(words, e.Predicate)
			}
		}
		for _, n := range gq.Graph.Nodes {
			if n.Name != "" {
				words = append(words, n.Name)
			}
		}
		out = append(out, keywordCase{
			input: strings.Join(words, " "),
			gq:    gq.Graph,
			truth: gq.Truth,
		})
	}
	return out
}

// RunKeyword measures the keyword front end on this environment.
func RunKeyword(env *Env, short bool) (*KeywordBenchResult, error) {
	rounds, limit := 6, 0
	if short {
		rounds, limit = 2, 5
	}
	cases := keywordCases(env, limit)
	if len(cases) == 0 {
		return nil, fmt.Errorf("bench: environment has no keyword cases")
	}
	opts := env.SearchOptions(10)
	ctx := context.Background()
	res := &KeywordBenchResult{
		Dataset: env.Cfg.Profile.Name,
		Scale:   fmt.Sprintf("%d nodes / %d edges", env.Dataset.Graph.NumNodes(), env.Dataset.Graph.NumEdges()),
		EnvInfo: CaptureEnv(),
	}

	// Caches off on both paths: every latency sample below is a real
	// pipeline execution, not a cache hit.
	srv := serve.New(env.Engine, serve.Config{ResultCache: -1, PlanCache: -1})
	front := keyword.New(srv, keyword.Config{CacheSize: -1})

	// Assembly alone.
	var asmLat []time.Duration
	candSum, execSum := 0, 0
	for r := 0; r < rounds; r++ {
		for _, c := range cases {
			asm := keyword.Assemble(env.Dataset.Graph, c.input, keyword.Config{})
			asmLat = append(asmLat, asm.Elapsed)
			if r == 0 {
				candSum += len(asm.Candidates)
			}
		}
	}

	// End-to-end: blended multi-candidate keyword search.
	blended, err := runKeywordE2E(ctx, front, cases, opts, rounds, 0, &execSum)
	if err != nil {
		return nil, err
	}
	blended.Workload = "keyword-blended"
	blended.AssemblyP50Us = percentile(sortedLatencies(asmLat), 0.5)
	blended.AssemblyP95Us = percentile(sortedLatencies(asmLat), 0.95)
	blended.CandidatesMean = float64(candSum) / float64(len(cases))
	blended.ExecutedMean = float64(execSum) / float64(len(cases))

	// End-to-end: best single candidate only.
	single, err := runKeywordE2E(ctx, front, cases, opts, rounds, 1, nil)
	if err != nil {
		return nil, err
	}
	single.Workload = "keyword-single"

	// Structured baseline: the hand-written query through the same
	// serving layer.
	structured, err := runStructuredE2E(ctx, srv, cases, opts, rounds)
	if err != nil {
		return nil, err
	}

	res.Rows = append(res.Rows, blended, single, structured)
	return res, nil
}

// runKeywordE2E replays every case through the keyword front end for the
// given number of rounds, collecting latencies and (first round) quality.
// maxCandidates 0 uses the front end's default blend width.
func runKeywordE2E(ctx context.Context, front *keyword.Frontend, cases []keywordCase,
	opts core.Options, rounds, maxCandidates int, execSum *int) (KeywordRow, error) {
	var lat []time.Duration
	var prs []metrics.PR
	for r := 0; r < rounds; r++ {
		for _, c := range cases {
			start := time.Now()
			resp, err := front.Search(ctx, c.input, opts, maxCandidates)
			if err != nil {
				return KeywordRow{}, fmt.Errorf("keywords %q: %w", c.input, err)
			}
			lat = append(lat, time.Since(start))
			if r == 0 {
				var entities []string
				for _, a := range resp.Answers {
					entities = append(entities, a.Entity)
				}
				prs = append(prs, metrics.Evaluate(entities, c.truth))
				if execSum != nil {
					*execSum += resp.Executed
				}
			}
		}
	}
	sorted := sortedLatencies(lat)
	pr := metrics.Mean(prs)
	return KeywordRow{
		Queries:   len(cases),
		Rounds:    rounds,
		P50Us:     percentile(sorted, 0.5),
		P95Us:     percentile(sorted, 0.95),
		Precision: pr.Precision,
		Recall:    pr.Recall,
		F1:        pr.F1,
	}, nil
}

// runStructuredE2E replays the hand-written structured queries through
// the same serving layer — the baseline the keyword path is judged
// against.
func runStructuredE2E(ctx context.Context, srv *serve.Engine, cases []keywordCase,
	opts core.Options, rounds int) (KeywordRow, error) {
	var lat []time.Duration
	var prs []metrics.PR
	for r := 0; r < rounds; r++ {
		for _, c := range cases {
			start := time.Now()
			res, err := srv.Search(ctx, c.gq, opts)
			if err != nil {
				return KeywordRow{}, fmt.Errorf("structured %s: %w", c.input, err)
			}
			lat = append(lat, time.Since(start))
			if r == 0 {
				var entities []string
				for _, a := range res.Answers {
					entities = append(entities, a.PivotName)
				}
				prs = append(prs, metrics.Evaluate(entities, c.truth))
			}
		}
	}
	sorted := sortedLatencies(lat)
	pr := metrics.Mean(prs)
	return KeywordRow{
		Workload:  "structured",
		Queries:   len(cases),
		Rounds:    rounds,
		P50Us:     percentile(sorted, 0.5),
		P95Us:     percentile(sorted, 0.95),
		Precision: pr.Precision,
		Recall:    pr.Recall,
		F1:        pr.F1,
	}, nil
}

// WriteJSON stores the artifact.
func (r *KeywordBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the comparison as a text table.
func (r *KeywordBenchResult) Render() *Table {
	t := &Table{
		Title: fmt.Sprintf("Keyword front end (%s, %s, %s/%s)", r.Dataset, r.Scale, r.GOOS, r.GOARCH),
		Header: []string{"workload", "queries", "asm p50 µs", "asm p95 µs",
			"p50 µs", "p95 µs", "cands", "exec", "P", "R", "F1"},
	}
	for _, row := range r.Rows {
		asm50, asm95, cands, exec := "-", "-", "-", "-"
		if row.AssemblyP50Us > 0 {
			asm50 = fmt.Sprintf("%.0f", row.AssemblyP50Us)
			asm95 = fmt.Sprintf("%.0f", row.AssemblyP95Us)
		}
		if row.CandidatesMean > 0 {
			cands = fmt.Sprintf("%.1f", row.CandidatesMean)
			exec = fmt.Sprintf("%.1f", row.ExecutedMean)
		}
		t.AddRow(row.Workload,
			fmt.Sprintf("%d", row.Queries),
			asm50, asm95,
			fmt.Sprintf("%.0f", row.P50Us),
			fmt.Sprintf("%.0f", row.P95Us),
			cands, exec,
			fmt.Sprintf("%.2f", row.Precision),
			fmt.Sprintf("%.2f", row.Recall),
			fmt.Sprintf("%.2f", row.F1),
		)
	}
	return t
}
