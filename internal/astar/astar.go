// Package astar implements the paper's A* semantic search (Section V,
// Algorithm 1): best-first top-k path search over the lazily materialized
// semantic graph, guided by the heuristic pss estimation
//
//	ψ̂(u_s..u_i) = (∏ w_j · m(u_i))^(1/n̂)        (Eq. 7)
//
// which upper-bounds the exact path semantic similarity
//
//	ψ(u_s..u_t) = (∏ w_j)^(1/n)                  (Eq. 6)
//
// of every match extending the partial path (Theorem 1), so matches pop off
// the frontier in exact non-increasing pss order (Theorem 2).
//
// Generalization to multi-edge sub-queries: a sub-query graph may contain
// several query edges (segments). The search state tracks the segment being
// matched; reaching a node that matches the segment's end query node closes
// the segment (paths stop at the first such node, mirroring the paper's
// stop-at-target-match semantics). The m(u) bound is a suffix maximum over
// the remaining segments, which keeps the estimate admissible and
// consistent (see internal/semgraph and DESIGN.md).
//
// Hot path: search states live in a flat arena ([]state with int32 parent
// indices) instead of one heap allocation per successor, end-set membership
// is tested against per-segment bitsets instead of maps, and most
// τ-pruning decisions skip math.Pow — x^(1/n̂) is monotone in x, so a raw
// weight product below a precomputed (τ^n̂ minus a safety margin) floor is
// certainly pruned without evaluating Eq. 7; only successors near the
// threshold or entering the frontier pay the Pow, with arithmetic
// bit-identical to the seed so Theorem 2's emission order (including
// tie-breaks) is preserved exactly (see DESIGN.md, Hot path). The seed
// implementation is preserved as LegacySearcher for the equivalence tests
// and before/after benchmarks.
package astar

import (
	"math"
	"sort"

	"semkg/internal/kg"
	"semkg/internal/pqueue"
)

// Weighter supplies semantic edge weights and the m(u) heuristic bound.
// *semgraph.Weighter implements it.
type Weighter interface {
	// Weight returns the semantic weight in (0,1] of graph predicate p for
	// the seg-th query edge of the sub-query.
	Weight(p kg.PredID, seg int) float64
	// NodeMax returns an upper bound on any single edge weight reachable
	// from u while matching query edges seg or later.
	NodeMax(u kg.NodeID, seg int) float64
}

// RowProvider is optionally implemented by Weighters (notably
// *semgraph.Weighter) that can hand out their per-segment weight rows
// directly. NewSearcher then shares the rows in place instead of copying
// NumPredicates×segments values through the interface per search — the
// values are identical, so search arithmetic is unchanged.
type RowProvider interface {
	// Row returns the seg-th weight row, indexed by kg.PredID. The
	// searcher treats it as read-only.
	Row(seg int) []float64
}

// SubQuery is the compiled form of a sub-query path graph: the node-match
// sets φ(v) of its query nodes, resolved by the transformation library.
type SubQuery struct {
	// Anchors is φ(v_s) of the starting specific node.
	Anchors []kg.NodeID
	// EndSets[i] is φ(q_{i+1}) for the query node terminating the i-th
	// query edge; EndSets[len-1] is φ(v_t) of the sub-query's end node.
	EndSets []map[kg.NodeID]bool
	// FirstHop, when non-nil, restricts the search to paths whose first
	// edge leads to a node the predicate accepts. Because every match is
	// at least one edge long, first-hop nodes partition the path space
	// exactly: the sharded engine gives each shard the filter "first hop
	// owned here", so the per-shard searches enumerate disjoint path sets
	// whose union is the unrestricted search's. nil accepts every
	// neighbor.
	FirstHop func(kg.NodeID) bool
}

// Segments returns the number of query edges.
func (s SubQuery) Segments() int { return len(s.EndSets) }

// Options configures a search.
type Options struct {
	// Tau is the pss threshold τ (Definition 7); partial paths whose
	// estimate falls below it are pruned (Lemma 3). Default 0.8.
	Tau float64
	// MaxHops is the user-desired path length n̂: matches longer than
	// MaxHops knowledge-graph edges are ignored (Section V-A). Default 4.
	MaxHops int
	// NoHeuristic disables the m(u) factor of the estimate (treats it
	// as 1). The search remains correct but prunes far less — this is the
	// uninformed best-first ablation of the benchmarks.
	NoHeuristic bool
	// PruneVisited enables the paper's visited-set pruning (Algorithm 1,
	// line 6): each (node, segment, hops) state expands at most once.
	// This shrinks the search space considerably but — like the paper's
	// implementation — may miss alternate simple paths that share a state
	// with an earlier, better-weighted path, so per-entity pss can come
	// out below the true optimum. The default (false) enumerates exactly
	// and keeps Theorem 2's global-optimality guarantee unconditional;
	// the hop bound n̂ and τ-pruning keep the space tractable.
	PruneVisited bool
	// DenseEndSets forces per-segment φ membership into full-graph
	// bitsets — the pre-scale-up representation, whose per-search
	// NumNodes/8-byte zeroing is what the million-node world exposed as a
	// steady-state hot spot. Kept as the before side of kgbench -exp
	// load's comparison; the default picks a sorted-id or bitset
	// representation per segment by set density, with identical membership
	// answers.
	DenseEndSets bool
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 0.8
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 4
	}
	return o
}

// Match is a sub-query graph match: a path in the knowledge graph together
// with its exact path semantic similarity.
type Match struct {
	// Nodes is the node sequence of the path; Nodes[0] matches the
	// sub-query's anchor and Nodes[len-1] its end (pivot) node.
	Nodes []kg.NodeID
	// Edges are the knowledge-graph edges between consecutive nodes.
	Edges []kg.EdgeID
	// SegEnds[i] is the index into Nodes where the i-th query edge's
	// match ends (the anchor of query node i+1).
	SegEnds []int
	// PSS is the exact path semantic similarity ψ (Eq. 6).
	PSS float64
}

// End returns the node matching the sub-query's end (pivot) query node.
func (m Match) End() kg.NodeID { return m.Nodes[len(m.Nodes)-1] }

// Len returns the number of knowledge-graph edges in the match.
func (m Match) Len() int { return len(m.Edges) }

// state is an arena entry: a partial path positioned at node, currently
// matching query edge seg, having consumed hops graph edges with weight
// product w. parent indexes the arena; noParent for anchors.
type state struct {
	node   kg.NodeID
	via    kg.EdgeID // edge consumed to arrive; -1 for anchors
	parent int32
	seg    int32
	hops   int32
	w      float64
}

const noParent int32 = -1

type stateKey struct {
	node kg.NodeID
	seg  int32
	hops int32
}

// bitset is a fixed-capacity node-membership set; one word per 64 nodes.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i kg.NodeID)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i kg.NodeID) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }

// nodeSet is an adaptive node-membership set. φ(v) of a typed query node
// can be a large fraction of the graph (bitset territory), but most end
// sets are a handful of entities — and a full-graph bitset per segment
// per search means zeroing NumNodes/8 bytes each time, which at 10M nodes
// is 1.25 MB of pure overhead before the first expansion. Small sets
// therefore keep a sorted id slice (binary search, cache-resident);
// only sets dense enough to amortize the allocation get a bitset.
type nodeSet struct {
	sorted []kg.NodeID // sorted ascending; nil when bits is used
	bits   bitset
}

// newNodeSet compiles one φ end set. members may contain false-valued
// entries (non-members, as in the seed's map test); n is the graph's node
// count. forceDense restores the all-bitset behavior.
func newNodeSet(members map[kg.NodeID]bool, n int, forceDense bool) nodeSet {
	k := 0
	for _, m := range members {
		if m {
			k++
		}
	}
	// A bitset costs n/8 bytes to zero; the sorted slice costs k·log k to
	// sort and log k per probe. Cross over when the set holds more than
	// one node in 256 — past that the bitset's O(1) probes win and its
	// allocation is amortized by the set construction itself.
	if forceDense || (n > 0 && k > n/256) {
		s := nodeSet{bits: newBitset(n)}
		for u, m := range members {
			if m {
				s.bits.set(u)
			}
		}
		return s
	}
	s := nodeSet{sorted: make([]kg.NodeID, 0, k)}
	for u, m := range members {
		if m {
			s.sorted = append(s.sorted, u)
		}
	}
	sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	return s
}

func (s *nodeSet) has(u kg.NodeID) bool {
	if s.bits != nil {
		return s.bits.has(u)
	}
	lo, hi := 0, len(s.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.sorted[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.sorted) && s.sorted[lo] == u
}

// Stats counts search work, for the pruning-effectiveness experiments.
type Stats struct {
	Popped  int // states expanded
	Pushed  int // states entering the frontier
	Pruned  int // expansions dropped by the τ threshold
	Emitted int // matches produced
}

// Searcher runs Algorithm 1 incrementally: each Next call continues the
// search and returns the next-best match by exact pss. The paper's remark
// that "we usually need more than k matches collected for each g_i"
// (Section V-B) is served by simply calling Next again — the threshold
// assembly pulls matches on demand.
//
// A Searcher is not safe for concurrent use.
type Searcher struct {
	g    *kg.Graph
	w    Weighter
	sub  SubQuery
	opts Options

	// rows materializes the per-segment weight rows once — shared in place
	// when the Weighter is a RowProvider — so the expansion inner loop
	// indexes a flat slice instead of calling through the Weighter
	// interface per successor.
	rows [][]float64
	ends []nodeSet // per-segment φ membership, replacing map lookups

	arena    []state
	frontier pqueue.Max[int32] // arena indices; capacity persists across Next calls
	closed   map[stateKey]struct{}
	emitted  map[kg.NodeID]bool // end-node dedup: one match per answer entity
	invRoot  float64            // 1/n̂
	// pruneFloor* are conservative raw-product thresholds: a partial
	// state's w·m below pruneFloorPartial (≈ τ^n̂) — or a complete h-hop
	// match's w below pruneFloorComplete[h] (≈ τ^h) — is certainly pruned
	// by the seed's x^(1/n) < τ test, so math.Pow is skipped. The 1e-9
	// relative margin keeps borderline states on the exact-arithmetic
	// path, preserving bit-identical behavior.
	pruneFloorPartial  float64
	pruneFloorComplete []float64
	stats              Stats
}

// NewSearcher prepares a search for one sub-query graph. The sub-query must
// have at least one segment; anchors or end sets may be empty, in which
// case the search simply yields no matches.
func NewSearcher(g *kg.Graph, w Weighter, sub SubQuery, opts Options) *Searcher {
	opts = opts.withDefaults()
	s := &Searcher{
		g:       g,
		w:       w,
		sub:     sub,
		opts:    opts,
		closed:  make(map[stateKey]struct{}),
		emitted: make(map[kg.NodeID]bool),
		invRoot: 1 / float64(opts.MaxHops),
		arena:   make([]state, 0, 64+len(sub.Anchors)),
	}

	const margin = 1 - 1e-9
	s.pruneFloorPartial = math.Pow(opts.Tau, float64(opts.MaxHops)) * margin
	s.pruneFloorComplete = make([]float64, opts.MaxHops+1)
	for h := 1; h <= opts.MaxHops; h++ {
		s.pruneFloorComplete[h] = math.Pow(opts.Tau, float64(h)) * margin
	}

	segs := sub.Segments()
	preds := g.NumPredicates()
	rp, _ := w.(RowProvider)
	s.rows = make([][]float64, segs)
	s.ends = make([]nodeSet, segs)
	for seg := 0; seg < segs; seg++ {
		if rp != nil {
			s.rows[seg] = rp.Row(seg)
		} else {
			row := make([]float64, preds)
			for p := 0; p < preds; p++ {
				row[p] = w.Weight(kg.PredID(p), seg)
			}
			s.rows[seg] = row
		}
		s.ends[seg] = newNodeSet(sub.EndSets[seg], g.NumNodes(), opts.DenseEndSets)
	}

	for _, u := range sub.Anchors {
		st := state{node: u, via: -1, parent: noParent, seg: 0, hops: 0, w: 1}
		s.push(s.alloc(st), s.estimate(st))
	}
	return s
}

// Stats returns search-effort counters accumulated so far.
func (s *Searcher) Stats() Stats { return s.stats }

// estimate computes ψ̂ for a partial state (Eq. 7), with the seed's exact
// arithmetic.
func (s *Searcher) estimate(st state) float64 {
	m := 1.0
	if !s.opts.NoHeuristic {
		m = s.w.NodeMax(st.node, int(st.seg))
	}
	return math.Pow(st.w*m, s.invRoot)
}

func (s *Searcher) alloc(st state) int32 {
	s.arena = append(s.arena, st)
	return int32(len(s.arena) - 1)
}

func (s *Searcher) push(idx int32, priority float64) {
	s.frontier.Push(idx, priority)
	s.stats.Pushed++
}

// Next returns the match with the greatest pss not yet returned, in exact
// non-increasing pss order. ok is false when the search space is exhausted.
func (s *Searcher) Next() (Match, bool) {
	for {
		idx, pri, ok := s.frontier.Pop()
		if !ok {
			return Match{}, false
		}
		st := s.arena[idx]
		if st.seg == int32(s.sub.Segments()) {
			// Complete match popped in global pss order (Theorem 2); its
			// frontier priority is its exact pss.
			if s.emitted[st.node] {
				continue
			}
			s.emitted[st.node] = true
			s.stats.Emitted++
			return s.reconstruct(idx, pri), true
		}
		if s.opts.PruneVisited {
			key := stateKey{st.node, st.seg, st.hops}
			if _, dup := s.closed[key]; dup {
				continue
			}
			s.closed[key] = struct{}{}
		}
		s.stats.Popped++
		s.expand(idx, nil)
	}
}

// RunEager drives the search in the time-bounded mode of Algorithm 2:
// matches are emitted the moment they are discovered during expansion
// (non-optimal order), and the search continues until emit returns false,
// stop returns true, or the space is exhausted. It returns true when the
// space was exhausted (the eager result set is then complete and exact).
func (s *Searcher) RunEager(stop func() bool, emit func(Match) bool) bool {
	for {
		if stop != nil && stop() {
			return false
		}
		idx, _, ok := s.frontier.Pop()
		if !ok {
			return true
		}
		st := s.arena[idx]
		if st.seg == int32(s.sub.Segments()) {
			continue // already emitted at discovery time
		}
		if s.opts.PruneVisited {
			key := stateKey{st.node, st.seg, st.hops}
			if _, dup := s.closed[key]; dup {
				continue
			}
			s.closed[key] = struct{}{}
		}
		s.stats.Popped++
		keepGoing := true
		s.expand(idx, func(m Match) {
			if keepGoing && !emit(m) {
				keepGoing = false
			}
		})
		if !keepGoing {
			return false
		}
	}
}

// expand generates the successor states of the arena entry at idx.
// Completed matches are pushed to the frontier in optimal mode
// (emitEager == nil), or handed to emitEager immediately in time-bounded
// mode. Raw weight products below the prune floors skip the math.Pow of
// Eq. 6/7 entirely; everything else follows the seed's exact arithmetic.
func (s *Searcher) expand(idx int32, emitEager func(Match)) {
	st := s.arena[idx] // copy: appends below may grow the arena
	segs := int32(s.sub.Segments())
	// Hop budget: after consuming one edge, each remaining segment still
	// needs at least one edge (hops+1 + (segs-seg-1) <= MaxHops).
	if int(st.hops)+int(segs-st.seg) > s.opts.MaxHops {
		return
	}
	ends := &s.ends[st.seg]
	row := s.rows[st.seg]
	for _, h := range s.g.Neighbors(st.node) {
		if st.hops == 0 && s.sub.FirstHop != nil && !s.sub.FirstHop(h.Neighbor) {
			continue // another shard owns paths starting through this node
		}
		if s.onPath(idx, h.Neighbor) {
			continue // matches are simple paths (path graphs, Definition 6)
		}
		nw := st.w * row[h.Pred]
		nseg := st.seg
		nhops := st.hops + 1
		if ends.has(h.Neighbor) {
			// Segment closed on arrival (paths stop at the first node
			// matching the segment's end query node).
			nseg++
			if nseg == segs {
				// Complete match: exact pss, n = actual path length.
				if nw < s.pruneFloorComplete[nhops] {
					s.stats.Pruned++
					continue
				}
				pss := math.Pow(nw, 1/float64(nhops))
				if pss < s.opts.Tau {
					s.stats.Pruned++
					continue
				}
				next := s.alloc(state{node: h.Neighbor, via: h.Edge, parent: idx,
					seg: nseg, hops: nhops, w: nw})
				if emitEager != nil {
					// Algorithm 2 collects every explored match in M̂_i;
					// consumers keep the best per answer entity.
					s.stats.Emitted++
					emitEager(s.reconstruct(next, pss))
				} else {
					s.push(next, pss)
				}
				continue
			}
		}
		m := 1.0
		if !s.opts.NoHeuristic {
			m = s.w.NodeMax(h.Neighbor, int(nseg))
		}
		x := nw * m
		if x < s.pruneFloorPartial {
			s.stats.Pruned++
			continue
		}
		est := math.Pow(x, s.invRoot)
		if est < s.opts.Tau {
			s.stats.Pruned++
			continue
		}
		next := s.alloc(state{node: h.Neighbor, via: h.Edge, parent: idx,
			seg: nseg, hops: nhops, w: nw})
		s.push(next, est)
	}
}

// onPath reports whether node u already lies on the partial path ending at
// arena entry idx. Paths are at most MaxHops long, so the chain walk is
// O(n̂).
func (s *Searcher) onPath(idx int32, u kg.NodeID) bool {
	for cur := idx; cur != noParent; cur = s.arena[cur].parent {
		if s.arena[cur].node == u {
			return true
		}
	}
	return false
}

// reconstruct walks the parent chain to materialize the match path.
func (s *Searcher) reconstruct(idx int32, pss float64) Match {
	var revNodes []kg.NodeID
	var revEdges []kg.EdgeID
	var revSegs []int32
	for cur := idx; cur != noParent; cur = s.arena[cur].parent {
		st := &s.arena[cur]
		revNodes = append(revNodes, st.node)
		if st.via >= 0 {
			revEdges = append(revEdges, st.via)
		}
		revSegs = append(revSegs, st.seg)
	}
	n := len(revNodes)
	m := Match{
		Nodes: make([]kg.NodeID, n),
		Edges: make([]kg.EdgeID, len(revEdges)),
		PSS:   pss,
	}
	for i := range revNodes {
		m.Nodes[n-1-i] = revNodes[i]
	}
	for i := range revEdges {
		m.Edges[len(revEdges)-1-i] = revEdges[i]
	}
	// Segment end positions: index where seg increments.
	segs := s.sub.Segments()
	m.SegEnds = make([]int, segs)
	prevSeg := int32(0)
	for i := n - 1; i >= 0; i-- { // walk forward in path order
		cur := revSegs[i]
		for sgi := prevSeg; sgi < cur; sgi++ {
			m.SegEnds[sgi] = n - 1 - i
		}
		prevSeg = cur
	}
	return m
}
