// Package pqueue implements a generic binary max-heap priority queue.
//
// The paper's A* semantic search (Algorithm 1) keeps two max-heaps: the
// frontier of partial paths ordered by estimated pss, and the match set
// ordered by exact pss. The TA assembly (Section V-C) keeps candidate final
// matches ordered by score bounds. This package provides the single heap
// implementation backing all of them.
package pqueue

// Max is a max-heap of items with float64 priorities. The zero value is an
// empty queue ready to use. Ties are broken by insertion order (older items
// first), which keeps searches deterministic for equal priorities.
type Max[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	value    T
	priority float64
	seq      uint64
}

// Len returns the number of items in the queue.
func (q *Max[T]) Len() int { return len(q.items) }

// Push adds value with the given priority.
func (q *Max[T]) Push(value T, priority float64) {
	q.items = append(q.items, entry[T]{value: value, priority: priority, seq: q.seq})
	q.seq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the item with the greatest priority. It reports
// ok=false when the queue is empty.
func (q *Max[T]) Pop() (value T, priority float64, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = entry[T]{} // release for GC
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top.value, top.priority, true
}

// Peek returns the item with the greatest priority without removing it.
func (q *Max[T]) Peek() (value T, priority float64, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	return q.items[0].value, q.items[0].priority, true
}

// Drain removes all items and returns them in non-increasing priority order.
func (q *Max[T]) Drain() []T {
	out := make([]T, 0, len(q.items))
	for {
		v, _, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Reset removes all items but keeps the allocated capacity.
func (q *Max[T]) Reset() {
	clear(q.items)
	q.items = q.items[:0]
}

func (q *Max[T]) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

func (q *Max[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Max[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}

// Bounded is a max-heap that retains only the top n items by priority.
// Pushing beyond capacity evicts the current minimum if the new item ranks
// higher. It is used for fixed-size top-k match sets.
type Bounded[T any] struct {
	n     int
	items []entry[T]
	seq   uint64
}

// NewBounded returns a Bounded queue keeping at most n items. n must be > 0.
func NewBounded[T any](n int) *Bounded[T] {
	if n <= 0 {
		panic("pqueue: NewBounded requires n > 0")
	}
	return &Bounded[T]{n: n}
}

// Len returns the number of retained items.
func (b *Bounded[T]) Len() int { return len(b.items) }

// Min returns the smallest retained priority, or ok=false when empty.
func (b *Bounded[T]) Min() (priority float64, ok bool) {
	if len(b.items) == 0 {
		return 0, false
	}
	return b.items[0].priority, true
}

// Full reports whether the queue holds its maximum number of items.
func (b *Bounded[T]) Full() bool { return len(b.items) == b.n }

// Push offers value; it is retained if the queue is not full or value
// outranks the current minimum. It reports whether the value was retained.
func (b *Bounded[T]) Push(value T, priority float64) bool {
	// Internally a min-heap on priority, so items[0] is the eviction victim.
	if len(b.items) < b.n {
		b.items = append(b.items, entry[T]{value: value, priority: priority, seq: b.seq})
		b.seq++
		b.upMin(len(b.items) - 1)
		return true
	}
	if priority <= b.items[0].priority {
		return false
	}
	b.items[0] = entry[T]{value: value, priority: priority, seq: b.seq}
	b.seq++
	b.downMin(0)
	return true
}

// Drain removes all items and returns them in non-increasing priority order.
func (b *Bounded[T]) Drain() []T {
	out := make([]T, len(b.items))
	for i := len(b.items) - 1; i >= 0; i-- {
		out[i] = b.popMin()
	}
	return out
}

func (b *Bounded[T]) popMin() T {
	top := b.items[0]
	last := len(b.items) - 1
	b.items[0] = b.items[last]
	b.items[last] = entry[T]{}
	b.items = b.items[:last]
	if len(b.items) > 0 {
		b.downMin(0)
	}
	return top.value
}

func (b *Bounded[T]) lessMin(i, j int) bool {
	x, y := b.items[i], b.items[j]
	if x.priority != y.priority {
		return x.priority < y.priority
	}
	// Among equal priorities evict the newest so earlier finds survive,
	// matching the stable behaviour of the unbounded heap.
	return x.seq > y.seq
}

func (b *Bounded[T]) upMin(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !b.lessMin(i, parent) {
			return
		}
		b.items[i], b.items[parent] = b.items[parent], b.items[i]
		i = parent
	}
}

func (b *Bounded[T]) downMin(i int) {
	n := len(b.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && b.lessMin(l, best) {
			best = l
		}
		if r < n && b.lessMin(r, best) {
			best = r
		}
		if best == i {
			return
		}
		b.items[i], b.items[best] = b.items[best], b.items[i]
		i = best
	}
}
