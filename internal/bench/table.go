package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header row and data
// rows, printed as aligned text (the harness's analogue of the paper's
// tables and figure series).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func f1ms(d float64) string { return fmt.Sprintf("%.2fms", d) }
