// Streaming: the anytime search API — the same time-bounded query as
// examples/timebounded, but consumed as a live event stream. Provisional
// top-k snapshots arrive with their TA lower/upper bounds while the
// search runs, so an interactive application can paint answers
// immediately and refine them as the bounds close (Section VI,
// Theorem 4 of the paper).
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"semkg"
	"semkg/internal/datagen"
)

func main() {
	ctx := context.Background()
	ds := datagen.Generate(datagen.DBpediaLike(0.4))
	model, err := semkg.Train(ctx, ds.Graph, semkg.TrainConfig{Dim: 48, Epochs: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := semkg.NewEngine(ds.Graph, model, ds.Library)
	if err != nil {
		log.Fatal(err)
	}

	// The hardest simple query: the one with the largest validation set.
	q := ds.Simple[0]
	for _, cand := range ds.Simple {
		if len(cand.Truth) > len(q.Truth) {
			q = cand
		}
	}
	opts := semkg.Options{K: len(q.Truth), Tau: 0.7, MaxHops: 4, TimeBound: 250 * time.Millisecond}

	st, err := eng.Stream(ctx, q.Graph, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %s (k=%d, bound %s)\n\n", q.Name, opts.K, opts.TimeBound)
	for ev := range st.Events() {
		switch e := ev.(type) {
		case semkg.PhaseEvent:
			switch e.Phase {
			case semkg.PhaseAlert:
				fmt.Printf("phase %-8s  T̂=%s reached the alert threshold after %s\n",
					e.Phase, e.Projected.Round(time.Microsecond), e.Elapsed.Round(time.Microsecond))
			case semkg.PhaseAssemble:
				fmt.Printf("phase %-8s  collected %v matches per sub-query\n", e.Phase, e.Collected)
			default:
				fmt.Printf("phase %-8s\n", e.Phase)
			}
		case semkg.TopKEvent:
			fmt.Printf("topk  round %-3d  %d answer(s), L_k=%.3f  U_max=%.3f  gap=%.3f\n",
				e.Round, len(e.Answers), e.LowerK, e.UpperMax, e.UpperMax-e.LowerK)
		case semkg.ResultEvent:
			res := e.Result
			fmt.Printf("\nterminal: %d answer(s) in %s (approximate=%v)\n",
				len(res.Answers), res.Elapsed.Round(time.Microsecond), res.Approximate)
			for i, a := range res.Answers {
				if i >= 5 {
					fmt.Printf("    ... %d more\n", len(res.Answers)-i)
					break
				}
				fmt.Printf("%2d. %-28s score=%.3f\n", i+1, a.PivotName, a.Score)
			}
		}
	}
	fmt.Println("\nThe provisional snapshots converge to the terminal ranking as the")
	fmt.Println("L_k/U_max gap closes — the wire form of Theorem 4's anytime refinement.")
}
