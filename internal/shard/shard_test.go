package shard

import (
	"bytes"
	"math/rand"
	"testing"

	"semkg/internal/kg"
)

// randomGraph builds a deterministic pseudo-random typed multigraph.
func randomGraph(t *testing.T, seed int64, nodes, edges int) *kg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := kg.NewBuilder(nodes, edges)
	types := []string{"A", "B", "C", ""}
	preds := []string{"p", "q", "r", "s"}
	names := make([]string, nodes)
	for i := range names {
		names[i] = "n" + string(rune('a'+i%26)) + "_" + itoa(i)
		b.AddNode(names[i], types[rng.Intn(len(types))])
	}
	for i := 0; i < edges; i++ {
		b.AddEdge(kg.NodeID(rng.Intn(nodes)), kg.NodeID(rng.Intn(nodes)), preds[rng.Intn(len(preds))])
	}
	return b.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{byte('0' + i%10)}, buf...)
		i /= 10
	}
	return string(buf)
}

func TestPartitionOwnershipPartitions(t *testing.T) {
	g := randomGraph(t, 7, 80, 200)
	for _, n := range []int{1, 2, 3, 5} {
		set, err := Partition(g, Options{Shards: n, Halo: 2})
		if err != nil {
			t.Fatal(err)
		}
		ownedTotal := 0
		seen := make(map[kg.NodeID]int)
		for i := 0; i < set.Len(); i++ {
			sh := set.Shard(i)
			ownedTotal += sh.OwnedCount()
			for local := 0; local < sh.Graph.NumNodes(); local++ {
				if sh.Owned(kg.NodeID(local)) {
					seen[sh.GlobalNode(kg.NodeID(local))]++
				}
			}
		}
		if ownedTotal != g.NumNodes() {
			t.Fatalf("shards=%d: owned total %d, want %d", n, ownedTotal, g.NumNodes())
		}
		for u, c := range seen {
			if c != 1 {
				t.Fatalf("shards=%d: node %d owned by %d shards", n, u, c)
			}
			if set.Owner(u) < 0 || set.Owner(u) >= n {
				t.Fatalf("owner out of range for %d", u)
			}
		}
		if len(seen) != g.NumNodes() {
			t.Fatalf("shards=%d: %d distinct owned nodes, want %d", n, len(seen), g.NumNodes())
		}
	}
}

// TestPartitionHaloCover is the containment invariant the sharded engine
// relies on: every node within Halo (undirected) hops of an owned node is
// in the shard graph, and every base edge between shard members is too.
func TestPartitionHaloCover(t *testing.T) {
	g := randomGraph(t, 11, 60, 150)
	const halo = 3
	set, err := Partition(g, Options{Shards: 3, Halo: halo})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < set.Len(); i++ {
		sh := set.Shard(i)
		members := make(map[kg.NodeID]bool)
		for l := 0; l < sh.Graph.NumNodes(); l++ {
			members[sh.GlobalNode(kg.NodeID(l))] = true
		}
		// BFS from owned nodes in the base graph.
		dist := make(map[kg.NodeID]int)
		var frontier []kg.NodeID
		for u := 0; u < g.NumNodes(); u++ {
			if set.Owner(kg.NodeID(u)) == i {
				dist[kg.NodeID(u)] = 0
				frontier = append(frontier, kg.NodeID(u))
			}
		}
		for d := 0; d < halo; d++ {
			var next []kg.NodeID
			for _, u := range frontier {
				for _, h := range g.Neighbors(u) {
					if _, ok := dist[h.Neighbor]; !ok {
						dist[h.Neighbor] = d + 1
						next = append(next, h.Neighbor)
					}
				}
			}
			frontier = next
		}
		for u := range dist {
			if !members[u] {
				t.Fatalf("shard %d: node %d at distance %d missing (halo %d)", i, u, dist[u], halo)
			}
		}
		// Induced edges present, facts identical.
		wantEdges := 0
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.EdgeAt(kg.EdgeID(e))
			if members[edge.Src] && members[edge.Dst] {
				wantEdges++
			}
		}
		if sh.Graph.NumEdges() != wantEdges {
			t.Fatalf("shard %d: %d edges, want %d induced", i, sh.Graph.NumEdges(), wantEdges)
		}
		if err := sh.validateAgainst(g); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
}

func TestPartitionSingleShardIsWholeGraph(t *testing.T) {
	g := randomGraph(t, 3, 40, 90)
	set, err := Partition(g, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := set.Shard(0)
	if sh.Graph.NumNodes() != g.NumNodes() || sh.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("single shard %d/%d, want %d/%d",
			sh.Graph.NumNodes(), sh.Graph.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if sh.OwnedCount() != g.NumNodes() {
		t.Fatalf("single shard owns %d of %d", sh.OwnedCount(), g.NumNodes())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if sh.GlobalNode(kg.NodeID(u)) != kg.NodeID(u) || g.NodeName(kg.NodeID(u)) != sh.Graph.NodeName(kg.NodeID(u)) {
			t.Fatalf("identity mapping broken at %d", u)
		}
	}
}

// TestPartitionMoreShardsThanNodes exercises the empty-shard edge case:
// shards that own nothing have empty graphs and stay usable.
func TestPartitionMoreShardsThanNodes(t *testing.T) {
	b := kg.NewBuilder(4, 4)
	a := b.AddNode("a", "T")
	c := b.AddNode("b", "T")
	b.AddEdge(a, c, "p")
	g := b.Build()
	set, err := Partition(g, Options{Shards: 5, Halo: 2})
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	for i := 0; i < set.Len(); i++ {
		sh := set.Shard(i)
		if sh.Graph.NumNodes() == 0 {
			empty++
			if sh.OwnedCount() != 0 || sh.Graph.NumEdges() != 0 {
				t.Fatalf("empty shard %d has owned=%d edges=%d", i, sh.OwnedCount(), sh.Graph.NumEdges())
			}
		}
	}
	if empty != 3 {
		t.Fatalf("empty shards = %d, want 3", empty)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := randomGraph(t, 19, 70, 180)
	a, err := Partition(g, Options{Shards: 4, Halo: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{Shards: 4, Halo: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		var ba, bb bytes.Buffer
		if err := WriteShard(&ba, a.Shard(i)); err != nil {
			t.Fatal(err)
		}
		if err := WriteShard(&bb, b.Shard(i)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("shard %d: partitions of the same graph serialized differently", i)
		}
	}
}

func TestShardRoundTripAndAssemble(t *testing.T) {
	g := randomGraph(t, 23, 50, 120)
	set, err := Partition(g, Options{Shards: 3, Halo: 2})
	if err != nil {
		t.Fatal(err)
	}
	var loaded []*Shard
	for i := 0; i < set.Len(); i++ {
		var buf bytes.Buffer
		if err := WriteShard(&buf, set.Shard(i)); err != nil {
			t.Fatal(err)
		}
		sh, err := ReadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		orig := set.Shard(i)
		if sh.Index != orig.Index || sh.Shards != orig.Shards || sh.Halo != orig.Halo {
			t.Fatalf("meta mismatch after round trip: %+v", sh)
		}
		if sh.OwnedCount() != orig.OwnedCount() {
			t.Fatalf("owned %d, want %d", sh.OwnedCount(), orig.OwnedCount())
		}
		if sh.Graph.NumNodes() != orig.Graph.NumNodes() || sh.Graph.NumEdges() != orig.Graph.NumEdges() {
			t.Fatalf("graph shape mismatch after round trip")
		}
		loaded = append(loaded, sh)
	}
	// Load order must not matter.
	loaded[0], loaded[2] = loaded[2], loaded[0]
	set2, err := Assemble(g, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Halo() != set.Halo() || set2.Len() != set.Len() {
		t.Fatalf("assembled set shape mismatch")
	}
	for i := 0; i < set2.Len(); i++ {
		if set2.Shard(i).Index != i {
			t.Fatalf("assembled shard %d has index %d", i, set2.Shard(i).Index)
		}
	}
}

func TestAssembleRejectsMismatches(t *testing.T) {
	g := randomGraph(t, 29, 40, 100)
	set, _ := Partition(g, Options{Shards: 2, Halo: 2})
	all := []*Shard{set.Shard(0), set.Shard(1)}

	if _, err := Assemble(g, all[:1]); err == nil {
		t.Fatal("missing shard accepted")
	}
	if _, err := Assemble(g, []*Shard{set.Shard(0), set.Shard(0)}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	other := randomGraph(t, 31, 40, 100)
	if _, err := Assemble(other, all); err == nil {
		t.Fatal("shards of a different graph accepted")
	}
	mixed, _ := Partition(g, Options{Shards: 2, Halo: 3})
	if _, err := Assemble(g, []*Shard{set.Shard(0), mixed.Shard(1)}); err == nil {
		t.Fatal("mixed-halo shards accepted")
	}
}

func TestReadShardRejectsCorruption(t *testing.T) {
	g := randomGraph(t, 37, 30, 60)
	set, _ := Partition(g, Options{Shards: 2, Halo: 2})
	var buf bytes.Buffer
	if err := WriteShard(&buf, set.Shard(1)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadShard(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	bad := append([]byte("NOTSHARD"), good[8:]...)
	if _, err := ReadShard(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, cut := range []int{10, 20, len(good) / 2, len(good) - 1} {
		if _, err := ReadShard(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Flip one mapping byte: the header CRC must catch it.
	flipped := append([]byte(nil), good...)
	flipped[36] ^= 0x40
	if _, err := ReadShard(bytes.NewReader(flipped)); err == nil {
		t.Fatal("flipped mapping byte accepted")
	}
}

func TestPartitionValidation(t *testing.T) {
	g := randomGraph(t, 41, 10, 20)
	if _, err := Partition(nil, Options{Shards: 2}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Partition(g, Options{Shards: 0}); err == nil {
		t.Fatal("0 shards accepted")
	}
	set, err := Partition(g, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if set.Halo() != DefaultHalo {
		t.Fatalf("default halo = %d, want %d", set.Halo(), DefaultHalo)
	}
}
