package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity, mutex-guarded LRU map. Values are shared
// pointers: callers must treat returned values as read-only.
type lruCache[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU returns a cache holding at most max entries; max <= 0 yields a
// disabled cache (every Get misses, every Add is dropped).
func newLRU[V any](max int) *lruCache[V] {
	return &lruCache[V]{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	var zero V
	if c.max <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Add inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lruCache[V]) Add(key string, val V) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// GetOrAdd returns the value already cached under key, or inserts val
// and returns it. created reports an insertion — the atomicity the
// sub-search cache needs: two concurrent misses on one blueprint must
// share a single entry, not each build their own. On a disabled cache
// every call "creates" (returns val uncached), degrading gracefully to
// private, unshared entries.
func (c *lruCache[V]) GetOrAdd(key string, val V) (V, bool) {
	if c.max <= 0 {
		return val, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, false
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
	return val, true
}

// Purge drops every entry (engine-rebuild invalidation).
func (c *lruCache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Len returns the current entry count.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
