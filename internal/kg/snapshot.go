package kg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"sort"
	"strings"
)

// Binary graph snapshots.
//
// A snapshot is the storage form of a built Graph: the CSR arrays, the
// interned name/type/predicate tables and the derived search indexes
// (NodePreds CSR, normalized-name/initials/prefix), serialized so that a
// load is a few large sequential reads plus integer decoding — no TSV
// parsing, no strutil.Normalize/Initials over the vocabulary, no sort.
// The only per-entry work on load is rebuilding the Go maps (hash inserts)
// and re-threading the adjacency halves from the edge list, both pure
// integer/hash work that benchmarks an order of magnitude faster than
// ReadTriples + Build (see kgbench -exp ingest).
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "SEMKGSNP"
//	version uint32   (currently 1)
//	payload          sections below
//	crc     uint32   CRC-32C (Castagnoli) of the payload
//
// Payload sections, in order: node/edge/type/predicate counts; the three
// string tables (names, type names, predicate names; each string is a
// uint32 length plus bytes); per-node types; the edge list (src, dst, pred
// per edge); the adjacency offsets; the NodePreds CSR; and the two name
// indexes (normalized-name and initials tables for nodes, then for types),
// each written in sorted key order so identical graphs serialize to
// identical bytes.
const (
	snapshotMagic   = "SEMKGSNP"
	snapshotVersion = 1
)

// Typed snapshot errors, matched with errors.Is. ReadSnapshot never
// panics on malformed input: a damaged file yields one of these.
var (
	// ErrSnapshotMagic: the input does not start with the snapshot magic —
	// it is not a snapshot at all (possibly a TSV triple file; ReadGraph
	// auto-detects).
	ErrSnapshotMagic = errors.New("kg: not a graph snapshot (bad magic)")
	// ErrSnapshotVersion: the snapshot was written by an unknown format
	// version.
	ErrSnapshotVersion = errors.New("kg: unsupported snapshot version")
	// ErrSnapshotTruncated: the input ended before the encoded structures
	// were complete (includes an empty file).
	ErrSnapshotTruncated = errors.New("kg: truncated snapshot")
	// ErrSnapshotChecksum: the payload does not match its CRC.
	ErrSnapshotChecksum = errors.New("kg: snapshot checksum mismatch")
	// ErrSnapshotCorrupt: the payload decoded but violates structural
	// invariants (out-of-range ids, non-monotone offsets).
	ErrSnapshotCorrupt = errors.New("kg: corrupt snapshot")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot serializes g in the versioned, checksummed binary snapshot
// format read by ReadSnapshot. Output is deterministic: the same graph
// always produces the same bytes.
func WriteSnapshot(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], snapshotVersion)
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}

	crc := crc32.New(castagnoli)
	e := &snapEncoder{w: io.MultiWriter(bw, crc)}

	n, m := len(g.names), len(g.edges)
	e.u32(uint32(n))
	e.u32(uint32(m))
	e.u32(uint32(len(g.typeNames)))
	e.u32(uint32(len(g.predNames)))
	e.strings(g.names)
	e.strings(g.typeNames)
	e.strings(g.predNames)
	for _, t := range g.types {
		e.i32(int32(t))
	}
	for _, ed := range g.edges {
		e.i32(int32(ed.Src))
		e.i32(int32(ed.Dst))
		e.i32(int32(ed.Pred))
	}
	e.i32s(g.adjOff)
	e.i32s(g.nodePredOff)
	e.u32(uint32(len(g.nodePreds)))
	for _, p := range g.nodePreds {
		e.i32(int32(p))
	}
	e.nameIndex(g.nameIdx)
	e.nameIndex(g.typeIdx)
	if e.err != nil {
		return e.err
	}

	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// snapEncoder writes the payload primitives, latching the first error.
type snapEncoder struct {
	w   io.Writer
	buf [4]byte
	err error
}

func (e *snapEncoder) u32(v uint32) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:])
}

func (e *snapEncoder) i32(v int32) { e.u32(uint32(v)) }

func (e *snapEncoder) i32s(vs []int32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i32(v)
	}
}

func (e *snapEncoder) str(s string) {
	e.u32(uint32(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *snapEncoder) strings(ss []string) {
	for _, s := range ss {
		e.str(s)
	}
}

// nameIndex writes the norm table in ix.sorted order (its exact key set)
// and the initials table in sorted key order, keeping output deterministic
// despite map iteration.
func (e *snapEncoder) nameIndex(ix nameIndex) {
	e.u32(uint32(len(ix.sorted)))
	for i, key := range ix.sorted {
		e.str(key)
		ids := ix.sortedIDs[i]
		e.u32(uint32(len(ids)))
		for _, id := range ids {
			e.i32(id)
		}
	}
	keys := make([]string, 0, len(ix.initials))
	for k := range ix.initials {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u32(uint32(len(keys)))
	for _, key := range keys {
		e.str(key)
		ids := ix.initials[key]
		e.u32(uint32(len(ids)))
		for _, id := range ids {
			e.i32(id)
		}
	}
}

// ReadSnapshot loads a graph written by WriteSnapshot. Malformed input
// returns a typed error (ErrSnapshotMagic, ErrSnapshotVersion,
// ErrSnapshotTruncated, ErrSnapshotChecksum, ErrSnapshotCorrupt) — never a
// panic. The loaded graph is indistinguishable from the one that was
// saved: identical ids, adjacency order and index contents, so searches
// over it are bit-identical. Decoding uses GOMAXPROCS workers; use
// ReadSnapshotWorkers to pin the count.
func ReadSnapshot(r io.Reader) (*Graph, error) { return ReadSnapshotWorkers(r, 0) }

// ReadSnapshotWorkers is ReadSnapshot with an explicit decode worker
// count. workers == 1 decodes fully serially — the cold-start baseline
// kgbench -exp load compares against; zero or negative means GOMAXPROCS.
// Every worker count yields a structurally identical graph.
func ReadSnapshotWorkers(r io.Reader, workers int) (*Graph, error) {
	var header [len(snapshotMagic) + 4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: %d-byte header unreadable", ErrSnapshotTruncated, len(header))
	}
	if string(header[:len(snapshotMagic)]) != snapshotMagic {
		return nil, ErrSnapshotMagic
	}
	if v := binary.LittleEndian.Uint32(header[len(snapshotMagic):]); v != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrSnapshotVersion, v, snapshotVersion)
	}
	body, err := readBody(r)
	if err != nil {
		return nil, fmt.Errorf("kg: reading snapshot: %w", err)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: no checksum trailer", ErrSnapshotTruncated)
	}
	payload, trailer := body[:len(body)-4], body[len(body)-4:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrSnapshotChecksum
	}
	return decodeSnapshot(payload, normWorkers(workers))
}

// readBody slurps the remaining stream. Readers that know their length
// (bytes.Reader, strings.Reader) get an exact-size single read, and
// stat-able readers (*os.File — the semkgd -snapshot and kgsearch cold
// starts) get a size-hinted buffer; only unknown-length streams fall
// back to io.ReadAll's grow-and-copy loop.
func readBody(r io.Reader) ([]byte, error) {
	if lr, ok := r.(interface{ Len() int }); ok {
		body := make([]byte, lr.Len())
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, err
		}
		return body, nil
	}
	if st, ok := r.(interface{ Stat() (fs.FileInfo, error) }); ok {
		if info, err := st.Stat(); err == nil && info.Mode().IsRegular() && info.Size() > 0 {
			// The header was already consumed from r, so Size() slightly
			// over-allocates; the capacity hint still avoids regrowth.
			buf := bytes.NewBuffer(make([]byte, 0, info.Size()))
			if _, err := buf.ReadFrom(r); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}
	}
	return io.ReadAll(r)
}

// snapDecoder reads payload primitives from one in-memory buffer. String
// sections are converted to shared backing strings per table (not per
// string, and not the whole payload — the loaded graph must not pin the
// integer sections, which dominate the file, for its lifetime).
type snapDecoder struct {
	data []byte
	off  int
}

func (d *snapDecoder) need(n int) error {
	if d.off+n > len(d.data) {
		return fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrSnapshotTruncated, n, d.off, len(d.data)-d.off)
	}
	return nil
}

func (d *snapDecoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v, nil
}

func (d *snapDecoder) i32() (int32, error) {
	v, err := d.u32()
	return int32(v), err
}

// count reads a u32 length field, bounding it by what the remaining bytes
// could possibly encode (each element takes at least min bytes) so a
// corrupt count cannot trigger a huge allocation.
func (d *snapDecoder) count(min int) (int, error) {
	v, err := d.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if min > 0 && n > (len(d.data)-d.off)/min {
		return 0, fmt.Errorf("%w: count %d exceeds remaining payload", ErrSnapshotTruncated, n)
	}
	return n, nil
}

// block reserves n*4 payload bytes and returns them raw; callers decode
// little-endian int32s out of the returned slice. One bounds check per
// section, not per element.
func (d *snapDecoder) block(n int) ([]byte, error) {
	if err := d.need(4 * n); err != nil {
		return nil, err
	}
	buf := d.data[d.off : d.off+4*n]
	d.off += 4 * n
	return buf, nil
}

// idBlock decodes n int32-backed ids directly into their typed slice —
// no intermediate []int32 allocation.
func idBlock[T ~int32](d *snapDecoder, n int) ([]T, error) {
	buf, err := d.block(n)
	if err != nil {
		return nil, err
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

func (d *snapDecoder) i32s() ([]int32, error) {
	n, err := d.count(4)
	if err != nil {
		return nil, err
	}
	return idBlock[int32](d, n)
}

// strings decodes n length-prefixed strings with one local cursor. All
// strings of one table share a single backing string converted from the
// table's byte region, so the table costs one allocation (plus the
// negligible 4-byte length prefixes it pins).
func (d *snapDecoder) strings(n int) ([]string, error) {
	data, start := d.data, d.off
	off := start
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: string table ends at entry %d", ErrSnapshotTruncated, i)
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if l < 0 || l > len(data)-off {
			return nil, fmt.Errorf("%w: string of %d bytes at offset %d", ErrSnapshotTruncated, l, off)
		}
		off += l
	}
	blob := string(data[start:off])
	out := make([]string, n)
	p := 0
	for i := range out {
		l := int(binary.LittleEndian.Uint32(data[start+p:]))
		p += 4
		out[i] = blob[p : p+l]
		p += l
	}
	d.off = off
	return out, nil
}

// idxEntry is one parsed (key, ids) pair of a serialized index table; the
// maps themselves are built in parallel after the sequential parse.
type idxEntry struct {
	key string
	ids []int32
}

func (d *snapDecoder) idxEntries() ([]idxEntry, error) {
	n, err := d.count(8) // key len + id count per entry
	if err != nil {
		return nil, err
	}
	out := make([]idxEntry, n)
	// All id lists of one table share a single arena allocation, and all
	// keys share one backing string (a strings.Builder, so the integer id
	// bytes are not pinned). Offsets are recorded first because append
	// may move the arena while growing.
	offs := make([]int32, n+1)
	arena := make([]int32, 0, n)
	keyEnds := make([]int, n)
	var keys strings.Builder
	data, off := d.data, d.off
	for i := range out {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: index table ends at entry %d", ErrSnapshotTruncated, i)
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if l < 0 || l > len(data)-off {
			return nil, fmt.Errorf("%w: index key of %d bytes at offset %d", ErrSnapshotTruncated, l, off)
		}
		keys.Write(data[off : off+l])
		keyEnds[i] = keys.Len()
		off += l
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: index entry %d has no id count", ErrSnapshotTruncated, i)
		}
		c := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if c < 0 || c > (len(data)-off)/4 {
			return nil, fmt.Errorf("%w: index entry %d claims %d ids", ErrSnapshotTruncated, i, c)
		}
		for j := 0; j < c; j++ {
			arena = append(arena, int32(binary.LittleEndian.Uint32(data[off+4*j:])))
		}
		off += 4 * c
		offs[i+1] = int32(len(arena))
	}
	d.off = off
	blob := keys.String()
	prev := 0
	for i := range out {
		out[i].key = blob[prev:keyEnds[i]]
		prev = keyEnds[i]
		out[i].ids = arena[offs[i]:offs[i+1]:offs[i+1]]
	}
	return out, nil
}

func decodeSnapshot(payload []byte, workers int) (*Graph, error) {
	d := &snapDecoder{data: payload}
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	m, err := d.count(0)
	if err != nil {
		return nil, err
	}
	nTypes, err := d.count(0)
	if err != nil {
		return nil, err
	}
	nPreds, err := d.count(0)
	if err != nil {
		return nil, err
	}
	if m > (len(payload)-d.off)/12 || nTypes > len(payload) || nPreds > len(payload) {
		return nil, fmt.Errorf("%w: counts exceed payload", ErrSnapshotTruncated)
	}

	g := &Graph{}
	if g.names, err = d.strings(n); err != nil {
		return nil, err
	}
	if g.typeNames, err = d.strings(nTypes); err != nil {
		return nil, err
	}
	if g.predNames, err = d.strings(nPreds); err != nil {
		return nil, err
	}
	if g.types, err = idBlock[TypeID](d, n); err != nil {
		return nil, err
	}
	var corrupt firstErr
	parspan(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if t := g.types[i]; t != NoType && (t < 0 || int(t) >= nTypes) {
				corrupt.set(fmt.Errorf("%w: node %d has type %d of %d", ErrSnapshotCorrupt, i, t, nTypes))
				return
			}
		}
	})
	edgeBuf, err := d.block(3 * m)
	if err != nil {
		return nil, err
	}
	g.edges = make([]Edge, m)
	parspan(workers, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := int32(binary.LittleEndian.Uint32(edgeBuf[12*i:]))
			dst := int32(binary.LittleEndian.Uint32(edgeBuf[12*i+4:]))
			pred := int32(binary.LittleEndian.Uint32(edgeBuf[12*i+8:]))
			if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n || pred < 0 || int(pred) >= nPreds {
				corrupt.set(fmt.Errorf("%w: edge %d <%d,%d,%d> out of range", ErrSnapshotCorrupt, i, src, pred, dst))
				return
			}
			g.edges[i] = Edge{Src: NodeID(src), Dst: NodeID(dst), Pred: PredID(pred)}
		}
	})
	if err := corrupt.get(); err != nil {
		return nil, err
	}
	if g.adjOff, err = d.i32s(); err != nil {
		return nil, err
	}
	if err := checkOffsets(g.adjOff, n, 2*m); err != nil {
		return nil, fmt.Errorf("adjacency %w", err)
	}
	if g.nodePredOff, err = d.i32s(); err != nil {
		return nil, err
	}
	npCount, err := d.count(4)
	if err != nil {
		return nil, err
	}
	if err := checkOffsets(g.nodePredOff, n, npCount); err != nil {
		return nil, fmt.Errorf("node-predicate %w", err)
	}
	if g.nodePreds, err = idBlock[PredID](d, npCount); err != nil {
		return nil, err
	}
	parspan(workers, npCount, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := g.nodePreds[i]; v < 0 || int(v) >= nPreds {
				corrupt.set(fmt.Errorf("%w: node-predicate %d out of range", ErrSnapshotCorrupt, v))
				return
			}
		}
	})
	if err := corrupt.get(); err != nil {
		return nil, err
	}
	// The four index tables are framed by length prefixes, so a cheap
	// skip-scan locates each table's start; the expensive parse (key blob,
	// id arenas, map inserts) then runs per-table in parallel below.
	var idxStart [4]int
	for i := range idxStart {
		if idxStart[i], err = d.spanIdxTable(); err != nil {
			return nil, err
		}
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(d.data)-d.off)
	}

	// Derived structures that are cheaper to re-thread than to store:
	// lookup maps (hash inserts), the per-type node lists, the predicate
	// edge counts and the adjacency halves (cursor fill, as in Build).
	// They are mutually independent, so a cold start uses every core;
	// workers == 1 runs them strictly in sequence.
	tg := newTaskGroup(workers)
	tg.run(func() {
		g.nameIndex = make(map[string]NodeID, n)
		for id, name := range g.names {
			g.nameIndex[name] = NodeID(id)
		}
	})
	tg.run(func() {
		g.typeIndex = make(map[string]TypeID, nTypes)
		for id, name := range g.typeNames {
			g.typeIndex[name] = TypeID(id)
		}
		g.predIndex = make(map[string]PredID, nPreds)
		for id, name := range g.predNames {
			g.predIndex[name] = PredID(id)
		}
	})
	tg.run(func() {
		g.byType = make([][]NodeID, nTypes)
		for id, t := range g.types {
			if t != NoType {
				g.byType[t] = append(g.byType[t], NodeID(id))
			}
		}
		g.predCount = make([]int, nPreds)
		for i := range g.edges {
			g.predCount[g.edges[i].Pred]++
		}
	})
	tg.run(func() {
		g.halves = make([]Half, 2*m)
		corrupt.set(threadHalvesChecked(g, workers))
	})
	tg.run(func() {
		// Index ids flow straight into g.names/g.typeNames lookups at
		// query time; an out-of-range id must fail the load, not a later
		// search.
		ix, err := decodeIdxMaps(payload, idxStart[0], idxStart[1], n)
		if err != nil {
			corrupt.set(err)
			return
		}
		g.nameIdx = ix
	})
	tg.run(func() {
		ix, err := decodeIdxMaps(payload, idxStart[2], idxStart[3], nTypes)
		if err != nil {
			corrupt.set(err)
			return
		}
		g.typeIdx = ix
	})
	tg.wait()
	if err := corrupt.get(); err != nil {
		return nil, err
	}
	return g, nil
}

// spanIdxTable advances past one serialized index table, validating only
// its framing (counts and length prefixes fit the payload) and returning
// the offset where the table starts. The full parse happens later, in
// parallel across tables.
func (d *snapDecoder) spanIdxTable() (int, error) {
	start := d.off
	n, err := d.count(8) // key len + id count per entry
	if err != nil {
		return 0, err
	}
	data, off := d.data, d.off
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return 0, fmt.Errorf("%w: index table ends at entry %d", ErrSnapshotTruncated, i)
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if l < 0 || l > len(data)-off {
			return 0, fmt.Errorf("%w: index key of %d bytes at offset %d", ErrSnapshotTruncated, l, off)
		}
		off += l
		if off+4 > len(data) {
			return 0, fmt.Errorf("%w: index entry %d has no id count", ErrSnapshotTruncated, i)
		}
		c := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if c < 0 || c > (len(data)-off)/4 {
			return 0, fmt.Errorf("%w: index entry %d claims %d ids", ErrSnapshotTruncated, i, c)
		}
		off += 4 * c
	}
	d.off = off
	return start, nil
}

// decodeIdxMaps parses the norm and initials tables starting at the given
// payload offsets (located by spanIdxTable), validates every id against
// the vocabulary size, and assembles the nameIndex maps.
func decodeIdxMaps(payload []byte, normStart, initStart, limit int) (nameIndex, error) {
	nd := &snapDecoder{data: payload, off: normStart}
	norm, err := nd.idxEntries()
	if err != nil {
		return nameIndex{}, err
	}
	id := &snapDecoder{data: payload, off: initStart}
	initials, err := id.idxEntries()
	if err != nil {
		return nameIndex{}, err
	}
	if err := checkIdxIDs(norm, limit); err != nil {
		return nameIndex{}, err
	}
	if err := checkIdxIDs(initials, limit); err != nil {
		return nameIndex{}, err
	}
	return buildIdxMaps(norm, initials), nil
}

// threadHalvesChecked is threadHalves over untrusted input: every write
// is bounds-checked against the owning node's adjacency span and a short
// fill is rejected. Monotone offsets alone are not enough — the cursors
// index by adjOff[u] + (edges seen so far at u), so a span differing from
// the node's true degree must yield ErrSnapshotCorrupt, not an
// out-of-range write or a silently misthreaded list.
func threadHalvesChecked(g *Graph, workers int) error {
	n := len(g.adjOff) - 1
	var ferr firstErr
	parspan(workers, n, func(lo, hi int) {
		cursor := make([]int32, hi-lo)
		copy(cursor, g.adjOff[lo:hi])
		place := func(u NodeID, h Half) bool {
			c := cursor[int(u)-lo]
			if c >= g.adjOff[u+1] {
				ferr.set(fmt.Errorf("%w: node %d has adjacency span %d but a larger degree",
					ErrSnapshotCorrupt, u, g.adjOff[u+1]-g.adjOff[u]))
				return false
			}
			g.halves[c] = h
			cursor[int(u)-lo] = c + 1
			return true
		}
		for i := range g.edges {
			ed := &g.edges[i]
			if s := int(ed.Src); s >= lo && s < hi {
				if !place(ed.Src, Half{Edge: EdgeID(i), Neighbor: ed.Dst, Pred: ed.Pred, Out: true}) {
					return
				}
			}
			if d := int(ed.Dst); d >= lo && d < hi {
				if !place(ed.Dst, Half{Edge: EdgeID(i), Neighbor: ed.Src, Pred: ed.Pred, Out: false}) {
					return
				}
			}
		}
		for u := lo; u < hi; u++ {
			if cursor[u-lo] != g.adjOff[u+1] {
				ferr.set(fmt.Errorf("%w: node %d has adjacency span %d but degree %d",
					ErrSnapshotCorrupt, u, g.adjOff[u+1]-g.adjOff[u], cursor[u-lo]-g.adjOff[u]))
				return
			}
		}
	})
	return ferr.get()
}

// buildIdxMaps turns parsed index tables into a nameIndex. The norm
// entries arrive in sorted key order, so they double as the prefix-scan
// array without re-sorting.
func buildIdxMaps(norm, initials []idxEntry) nameIndex {
	ix := nameIndex{
		norm:      make(map[string][]int32, len(norm)),
		initials:  make(map[string][]int32, len(initials)),
		sorted:    make([]string, len(norm)),
		sortedIDs: make([][]int32, len(norm)),
	}
	for i, e := range norm {
		ix.sorted[i] = e.key
		ix.sortedIDs[i] = e.ids
		ix.norm[e.key] = e.ids
	}
	for _, e := range initials {
		ix.initials[e.key] = e.ids
	}
	return ix
}

// checkIdxIDs validates that every id of an index table addresses an
// existing vocabulary entry.
func checkIdxIDs(entries []idxEntry, limit int) error {
	for _, e := range entries {
		for _, id := range e.ids {
			if id < 0 || int(id) >= limit {
				return fmt.Errorf("%w: index key %q holds id %d of %d", ErrSnapshotCorrupt, e.key, id, limit)
			}
		}
	}
	return nil
}

// checkOffsets validates one CSR offset array: length n+1, starting at 0,
// non-decreasing, ending at total.
func checkOffsets(off []int32, n, total int) error {
	if len(off) != n+1 {
		return fmt.Errorf("%w: offsets have length %d, want %d", ErrSnapshotCorrupt, len(off), n+1)
	}
	if off[0] != 0 || int(off[n]) != total {
		return fmt.Errorf("%w: offsets span [%d,%d], want [0,%d]", ErrSnapshotCorrupt, off[0], off[n], total)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("%w: offsets decrease at %d", ErrSnapshotCorrupt, i)
		}
	}
	return nil
}

// ReadGraph loads a graph from either supported storage format, sniffing
// the snapshot magic: binary snapshots go through ReadSnapshot, anything
// else through the TSV ReadTriples parser. kgsearch, kgbench and semkgd
// accept both formats through this entry point.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(snapshotMagic))
	if err == nil && string(head) == snapshotMagic {
		return ReadSnapshot(br)
	}
	return ReadTriples(br)
}
