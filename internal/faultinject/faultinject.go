// Package faultinject provides scripted fault injection for stream- and
// connection-level chaos testing: readers and conns that delay, truncate,
// or sever at exact byte offsets, a TCP proxy that applies those faults
// between two real peers, and a scheduler for process-level kills.
//
// The package is deliberately deterministic: faults fire at byte offsets,
// not timers, so a test that severs a replication stream "mid-delta" cuts
// at the same frame boundary on every run, under -race, on any machine.
// Time-based kills (Schedule) are reserved for whole-process events where
// the exact cut point is the thing under test being random.
package faultinject

import (
	"errors"
	"io"
	"sync"
	"time"
)

// ErrSevered is the failure surfaced when a scripted sever fires: the
// stream behaves like a connection reset, not a clean EOF.
var ErrSevered = errors.New("faultinject: connection severed")

// Op is the kind of fault a Point fires.
type Op int

const (
	// Delay pauses the stream for Point.Pause, then continues. Models a
	// network stall or a GC-paused peer.
	Delay Op = iota
	// Truncate ends the stream with a clean io.EOF. Models a peer that
	// shut down politely mid-transfer — the hardest case to detect,
	// because nothing looks like an error.
	Truncate
	// Sever fails the stream with ErrSevered and, on conns, closes the
	// underlying transport so the peer sees the break too. Models a
	// killed process or a dropped route.
	Sever
)

// Point is one scripted fault: after exactly After bytes have flowed,
// apply Op. Points at the same offset fire in script order.
type Point struct {
	After int64
	Op    Op
	Pause time.Duration // Delay only
}

// Script is an ordered fault schedule over one direction of one stream.
// A Script is single-use: it tracks the byte offset of the stream it is
// attached to. Build a fresh Script per connection (see Proxy.SetScript).
type Script struct {
	mu     sync.Mutex
	points []Point
	offset int64
	next   int
	dead   error // sticky terminal state after Truncate/Sever
}

// NewScript builds a schedule from points, which must be ordered by
// ascending After (equal offsets allowed).
func NewScript(points ...Point) *Script {
	for i := 1; i < len(points); i++ {
		if points[i].After < points[i-1].After {
			panic("faultinject: script points out of order")
		}
	}
	return &Script{points: points}
}

// limit reports how many bytes may flow before the next fault fires, or
// a terminal error if a Truncate/Sever already triggered. max<=0 means
// unlimited (no pending point).
func (s *Script) limit() (max int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return 0, s.dead
	}
	// Fire every point already reached (zero-length gaps included).
	for s.next < len(s.points) && s.points[s.next].After <= s.offset {
		p := s.points[s.next]
		s.next++
		switch p.Op {
		case Delay:
			s.mu.Unlock()
			time.Sleep(p.Pause)
			s.mu.Lock()
		case Truncate:
			s.dead = io.EOF
			return 0, io.EOF
		case Sever:
			s.dead = ErrSevered
			return 0, ErrSevered
		}
	}
	if s.next >= len(s.points) {
		return 0, nil
	}
	return s.points[s.next].After - s.offset, nil
}

// advance records n bytes flowed.
func (s *Script) advance(n int) {
	s.mu.Lock()
	s.offset += int64(n)
	s.mu.Unlock()
}

// Reader wraps r, applying the script to the bytes read through it.
// Reads never span a fault point: a Read that would cross one is split,
// so the fault fires at its exact byte offset.
func Reader(r io.Reader, s *Script) io.Reader {
	return &faultReader{r: r, s: s}
}

type faultReader struct {
	r io.Reader
	s *Script
}

func (fr *faultReader) Read(p []byte) (int, error) {
	max, err := fr.s.limit()
	if err != nil {
		return 0, err
	}
	if max > 0 && int64(len(p)) > max {
		p = p[:max]
	}
	n, err := fr.r.Read(p)
	fr.s.advance(n)
	return n, err
}
