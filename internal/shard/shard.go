// Package shard partitions one immutable kg.Graph into N shard graphs for
// scatter-gather search (see DESIGN.md, "Sharded execution").
//
// The partition is by *node ownership with halo replication*: every node is
// owned by exactly one shard (deterministically, by node id modulo the
// shard count), and each shard graph is the subgraph induced by all nodes
// within Halo hops of its owned nodes. Any path of at most Halo edges
// whose first hop lands on an owned node therefore lies entirely inside
// the owner's shard graph (all path nodes are within Halo-1 hops of the
// first hop; the anchor is one hop away) — which is exactly the property
// the sharded engine needs: an A* sub-query search restricted to
// first-hops the shard owns finds, inside the shard graph alone, precisely
// those of the whole-graph search's matches, with identical path semantic
// similarities (searches bound path length by n̂ ≤ Halo). Because every
// match has exactly one first hop, the per-shard match streams form an
// exact, disjoint partition of the global match stream.
//
// Shard graphs are ordinary immutable kg.Graphs: they carry their own
// derived indexes (built by kg.Builder.Build) and serialize through the
// binary snapshot codec, so shards can be saved and loaded individually
// (WriteShard/ReadShard) and cold-started in parallel.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"semkg/internal/kg"
)

// DefaultHalo is the default replication radius, matching the engine's
// default path-length bound n̂ = 4. A sharded search whose MaxHops exceeds
// the partition's Halo cannot be answered from the shard graphs and falls
// back to the whole-graph engine.
const DefaultHalo = 4

// Options configures a partition.
type Options struct {
	// Shards is the number of shards. Must be >= 1; 1 yields a single
	// shard that is a relabeling-free copy of the base graph.
	Shards int
	// Halo is the replication radius in hops: each shard graph contains
	// every node within Halo hops of a node it owns (and every edge
	// between contained nodes). 0 means DefaultHalo. Larger halos support
	// deeper searches at the cost of more replication.
	Halo int
}

func (o Options) withDefaults() Options {
	if o.Halo <= 0 {
		o.Halo = DefaultHalo
	}
	return o
}

// Shard is one partition member: an immutable shard graph plus the id
// mappings back into the base graph. The zero value is unusable; obtain
// shards from Partition or ReadShard.
type Shard struct {
	// Index is this shard's position in [0, Shards).
	Index int
	// Shards is the total shard count of the partition this shard belongs
	// to; ownership is derivable from it (a node is owned when its base id
	// modulo Shards equals Index).
	Shards int
	// Halo is the replication radius the shard was built with.
	Halo int
	// Graph is the shard subgraph, a self-contained immutable kg.Graph
	// with its own derived indexes. Node and edge ids are shard-local.
	Graph *kg.Graph

	// nodeGlobal[local] is the base-graph id of local node `local`;
	// strictly ascending (locals are assigned in ascending base order).
	nodeGlobal []kg.NodeID
	// edgeGlobal[local] is the base-graph id of local edge `local`;
	// strictly ascending.
	edgeGlobal []kg.EdgeID
	ownedCount int
}

// GlobalNode maps a shard-local node id to its base-graph id.
func (s *Shard) GlobalNode(local kg.NodeID) kg.NodeID { return s.nodeGlobal[local] }

// GlobalEdge maps a shard-local edge id to its base-graph id.
func (s *Shard) GlobalEdge(local kg.EdgeID) kg.EdgeID { return s.edgeGlobal[local] }

// LocalNode maps a base-graph node id into this shard, reporting false
// when the node was not replicated here. O(log n) — locals are assigned in
// ascending base order, so the mapping array is sorted.
func (s *Shard) LocalNode(global kg.NodeID) (kg.NodeID, bool) {
	i := sort.Search(len(s.nodeGlobal), func(i int) bool { return s.nodeGlobal[i] >= global })
	if i < len(s.nodeGlobal) && s.nodeGlobal[i] == global {
		return kg.NodeID(i), true
	}
	return kg.NoNode, false
}

// Owned reports whether the shard-local node is owned by this shard (as
// opposed to replicated into its halo). Exactly one shard owns each base
// node.
func (s *Shard) Owned(local kg.NodeID) bool {
	return int(s.nodeGlobal[local])%s.Shards == s.Index
}

// OwnedCount returns the number of nodes this shard owns.
func (s *Shard) OwnedCount() int { return s.ownedCount }

// Stats summarizes one shard for monitoring.
type Stats struct {
	// Index is the shard's position in the partition.
	Index int `json:"index"`
	// Nodes and Edges count the shard graph (owned plus halo replicas).
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Owned counts the nodes this shard owns; Replicated = Nodes - Owned
	// counts halo copies whose owner is another shard.
	Owned      int `json:"owned"`
	Replicated int `json:"replicated"`
}

// Stats returns the shard's summary.
func (s *Shard) Stats() Stats {
	return Stats{
		Index:      s.Index,
		Nodes:      s.Graph.NumNodes(),
		Edges:      s.Graph.NumEdges(),
		Owned:      s.ownedCount,
		Replicated: s.Graph.NumNodes() - s.ownedCount,
	}
}

// Set is a complete partition of one base graph: every base node is owned
// by exactly one member shard. Immutable and safe for concurrent use.
type Set struct {
	base   *kg.Graph
	halo   int
	shards []*Shard
}

// Base returns the partitioned base graph.
func (s *Set) Base() *kg.Graph { return s.base }

// Len returns the number of shards.
func (s *Set) Len() int { return len(s.shards) }

// Halo returns the replication radius the set was partitioned with.
func (s *Set) Halo() int { return s.halo }

// Shard returns member i.
func (s *Set) Shard(i int) *Shard { return s.shards[i] }

// Owner returns the index of the shard owning base node u.
func (s *Set) Owner(u kg.NodeID) int { return int(u) % len(s.shards) }

// AllStats returns per-shard summaries, indexed by shard.
func (s *Set) AllStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Partition splits g into opts.Shards shard graphs. The partition is
// deterministic: the same graph and options always produce the same
// shards, bit for bit (shard snapshots of equal inputs are identical).
func Partition(g *kg.Graph, opts Options) (*Set, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d out of range (must be >= 1)", opts.Shards)
	}
	opts = opts.withDefaults()
	set := &Set{base: g, halo: opts.Halo, shards: make([]*Shard, opts.Shards)}
	// Shard builds are independent (each reads the immutable base and
	// writes only its own slot), so they run in parallel — cold starts
	// and the per-ingest re-partition scale with the slowest shard, not
	// the shard count.
	var wg sync.WaitGroup
	for i := range set.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			set.shards[i] = buildShard(g, i, opts)
		}(i)
	}
	wg.Wait()
	return set, nil
}

// buildShard materializes one member: BFS from the owned nodes to Halo
// hops, then an induced-subgraph build in ascending base order.
func buildShard(g *kg.Graph, index int, opts Options) *Shard {
	n := g.NumNodes()
	member := make([]bool, n)
	// BFS frontier over base ids; path search ignores edge direction, so
	// the halo does too.
	var frontier []kg.NodeID
	for u := index; u < n; u += opts.Shards {
		member[u] = true
		frontier = append(frontier, kg.NodeID(u))
	}
	ownedCount := len(frontier)
	for depth := 0; depth < opts.Halo && len(frontier) > 0; depth++ {
		var next []kg.NodeID
		for _, u := range frontier {
			for _, h := range g.Neighbors(u) {
				if !member[h.Neighbor] {
					member[h.Neighbor] = true
					next = append(next, h.Neighbor)
				}
			}
		}
		frontier = next
	}

	// Locals in ascending base order: deterministic ids, sorted mapping.
	var nodeGlobal []kg.NodeID
	local := make([]kg.NodeID, n)
	for u := 0; u < n; u++ {
		if member[u] {
			local[u] = kg.NodeID(len(nodeGlobal))
			nodeGlobal = append(nodeGlobal, kg.NodeID(u))
		} else {
			local[u] = kg.NoNode
		}
	}

	b := kg.NewBuilder(len(nodeGlobal), len(nodeGlobal)*2)
	for _, u := range nodeGlobal {
		b.AddNode(g.NodeName(u), g.TypeName(g.NodeType(u)))
	}
	var edgeGlobal []kg.EdgeID
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.EdgeAt(kg.EdgeID(e))
		ls, ld := local[edge.Src], local[edge.Dst]
		if ls == kg.NoNode || ld == kg.NoNode {
			continue
		}
		b.AddEdge(ls, ld, g.PredName(edge.Pred))
		edgeGlobal = append(edgeGlobal, kg.EdgeID(e))
	}
	return &Shard{
		Index:      index,
		Shards:     opts.Shards,
		Halo:       opts.Halo,
		Graph:      b.Build(),
		nodeGlobal: nodeGlobal,
		edgeGlobal: edgeGlobal,
		ownedCount: ownedCount,
	}
}

// Assemble reconstructs a Set from individually loaded shards (ReadShard).
// The shards must form the complete partition of base: same shard count
// and halo, one member per index, and mappings that agree with base node
// names — a shard saved from a different graph (or a stale snapshot after
// ingestion changed the base) is rejected rather than silently producing
// wrong search results.
func Assemble(base *kg.Graph, shards []*Shard) (*Set, error) {
	if base == nil {
		return nil, fmt.Errorf("shard: nil base graph")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no shards")
	}
	n := len(shards)
	halo := shards[0].Halo
	byIndex := make([]*Shard, n)
	for _, sh := range shards {
		if sh.Shards != n {
			return nil, fmt.Errorf("shard: shard %d was partitioned into %d shards, got %d members", sh.Index, sh.Shards, n)
		}
		if sh.Halo != halo {
			return nil, fmt.Errorf("shard: shard %d has halo %d, shard %d has %d", sh.Index, sh.Halo, shards[0].Index, halo)
		}
		if sh.Index < 0 || sh.Index >= n {
			return nil, fmt.Errorf("shard: shard index %d out of range [0,%d)", sh.Index, n)
		}
		if byIndex[sh.Index] != nil {
			return nil, fmt.Errorf("shard: duplicate shard index %d", sh.Index)
		}
		if err := sh.validateAgainst(base); err != nil {
			return nil, err
		}
		byIndex[sh.Index] = sh
	}
	for i, sh := range byIndex {
		if sh == nil {
			return nil, fmt.Errorf("shard: missing shard %d of %d", i, n)
		}
	}
	return &Set{base: base, halo: halo, shards: byIndex}, nil
}

// validateAgainst checks the shard's mappings identify the same entities
// and facts in base.
func (s *Shard) validateAgainst(base *kg.Graph) error {
	if len(s.nodeGlobal) != s.Graph.NumNodes() || len(s.edgeGlobal) != s.Graph.NumEdges() {
		return fmt.Errorf("shard %d: mapping sizes disagree with the shard graph", s.Index)
	}
	for local, global := range s.nodeGlobal {
		if int(global) >= base.NumNodes() || global < 0 {
			return fmt.Errorf("shard %d: node mapping %d -> %d outside the base graph", s.Index, local, global)
		}
		if base.NodeName(global) != s.Graph.NodeName(kg.NodeID(local)) {
			return fmt.Errorf("shard %d: node %d maps to base node %d with a different name (stale shard snapshot?)",
				s.Index, local, global)
		}
	}
	for local, global := range s.edgeGlobal {
		if int(global) >= base.NumEdges() || global < 0 {
			return fmt.Errorf("shard %d: edge mapping %d -> %d outside the base graph", s.Index, local, global)
		}
		be, le := base.EdgeAt(global), s.Graph.EdgeAt(kg.EdgeID(local))
		if base.NodeName(be.Src) != s.Graph.NodeName(le.Src) ||
			base.NodeName(be.Dst) != s.Graph.NodeName(le.Dst) ||
			base.PredName(be.Pred) != s.Graph.PredName(le.Pred) {
			return fmt.Errorf("shard %d: edge %d maps to base edge %d stating a different fact (stale shard snapshot?)",
				s.Index, local, global)
		}
	}
	return nil
}
