package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/sparql"
)

// DesignerSchemas lists the forward predicate paths from an Automobile to
// its designer's country.
var DesignerSchemas = [][]string{
	{"designer", "nationality"},
	{"designer", "birthPlace", "country"},
}

// EngineSchemas lists the forward predicate paths from an Automobile to
// its engine manufacturer's country.
var EngineSchemas = [][]string{
	{"engine", "manufacturer", "locationCountry"},
}

// NationalitySchemas lists paths from a Person to a country.
var NationalitySchemas = [][]string{
	{"nationality"},
	{"birthPlace", "country"},
}

// ClubSchemas lists paths from a SoccerClub to a country.
var ClubSchemas = [][]string{
	{"ground", "country"},
}

// buildWorkloads derives the benchmark query sets and their validation
// sets from the generated world.
func (d *Dataset) buildWorkloads(rng *rand.Rand, countries []string) {
	g := d.Graph

	// Simple workload: producedIn / nationality / club-in queries.
	nProd := min(8, len(countries))
	for i := 0; i < nProd; i++ {
		c := countries[i]
		truth := ProducedInTruth(g, c)
		if len(truth) == 0 {
			continue
		}
		d.Simple = append(d.Simple, GenQuery{
			Name:        fmt.Sprintf("%s-produced-%s", d.Profile.Name, c),
			Graph:       producedInQuery("Automobile", c, "assembly"),
			Focus:       "v1",
			Truth:       truth,
			SchemaCount: len(ProductionSchemas),
			Complexity:  1,
		})
	}
	for i := 0; i < min(4, len(countries)); i++ {
		c := countries[len(countries)-1-i]
		truth := unionTruth(g, "Person", NationalitySchemas, c)
		if len(truth) == 0 {
			continue
		}
		d.Simple = append(d.Simple, GenQuery{
			Name:        fmt.Sprintf("%s-nationality-%s", d.Profile.Name, c),
			Graph:       personNationalityQuery(c),
			Focus:       "v1",
			Truth:       truth,
			SchemaCount: len(NationalitySchemas),
			Complexity:  1,
		})
	}
	for i := 0; i < min(3, len(countries)); i++ {
		c := countries[(i*2+1)%len(countries)]
		truth := unionTruth(g, "SoccerClub", ClubSchemas, c)
		if len(truth) == 0 {
			continue
		}
		d.Simple = append(d.Simple, GenQuery{
			Name:        fmt.Sprintf("%s-club-%s", d.Profile.Name, c),
			Graph:       clubInQuery(c),
			Focus:       "v1",
			Truth:       truth,
			SchemaCount: len(ClubSchemas),
			Complexity:  1,
		})
	}

	// Table I variants (Fig. 1's four query graphs) for the country with
	// the largest validation set.
	best, bestLen := "", 0
	for _, c := range countries {
		if n := len(ProducedInTruth(g, c)); n > bestLen {
			best, bestLen = c, n
		}
	}
	if best != "" {
		d.table1C = best
		truth := ProducedInTruth(g, best)
		abbr := abbreviationOf(best, countries)
		d.Table1 = []GenQuery{
			{Name: "G1Q-car-type", Graph: producedInQuery("Car", best, "assembly"),
				Focus: "v1", Truth: truth, SchemaCount: len(ProductionSchemas), Complexity: 1},
			{Name: "G2Q-abbrev-name", Graph: producedInQuery("Automobile", abbr, "assembly"),
				Focus: "v1", Truth: truth, SchemaCount: len(ProductionSchemas), Complexity: 1},
			{Name: "G3Q-product-pred", Graph: producedInQuery("Automobile", best, "product"),
				Focus: "v1", Truth: truth, SchemaCount: len(ProductionSchemas), Complexity: 1},
			{Name: "G4Q-canonical", Graph: producedInQuery("Automobile", best, "assembly"),
				Focus: "v1", Truth: truth, SchemaCount: len(ProductionSchemas), Complexity: 1},
		}
	}

	// Medium workload: production country + designer nationality.
	combo2Count := make(map[combo2]int)
	for _, a := range d.autos {
		if a.designerNat != "" {
			combo2Count[combo2{a.prodCountry, a.designerNat}]++
		}
	}
	for _, c := range sortedCombos2(combo2Count) {
		if len(d.Medium) >= 5 || combo2Count[c] < 3 {
			continue
		}
		truth := crossTruth(g, "Automobile", [][][]string{ProductionSchemas, DesignerSchemas}, []string{c.x, c.y})
		if len(truth) == 0 {
			continue
		}
		d.Medium = append(d.Medium, GenQuery{
			Name:        fmt.Sprintf("%s-medium-%s-%s", d.Profile.Name, c.x, c.y),
			Graph:       mediumQuery(c.x, c.y),
			Focus:       "v1",
			Truth:       truth,
			SchemaCount: len(ProductionSchemas) * len(DesignerSchemas),
			Complexity:  2,
		})
	}

	// Complex workload: + engine manufacturer country.
	combo3Count := make(map[combo3]int)
	for _, a := range d.autos {
		if a.designerNat != "" && a.engineCtr != "" {
			combo3Count[combo3{a.prodCountry, a.designerNat, a.engineCtr}]++
		}
	}
	for _, c := range sortedCombos3(combo3Count) {
		if len(d.Complex) >= 5 || combo3Count[c] < 2 {
			continue
		}
		truth := crossTruth(g, "Automobile",
			[][][]string{ProductionSchemas, DesignerSchemas, EngineSchemas},
			[]string{c.x, c.y, c.z})
		if len(truth) == 0 {
			continue
		}
		d.Complex = append(d.Complex, GenQuery{
			Name:        fmt.Sprintf("%s-complex-%s-%s-%s", d.Profile.Name, c.x, c.y, c.z),
			Graph:       complexQuery(c.x, c.y, c.z),
			Focus:       "v1",
			Truth:       truth,
			SchemaCount: len(ProductionSchemas) * len(DesignerSchemas) * len(EngineSchemas),
			Complexity:  3,
		})
	}
	_ = rng
}

// producedInQuery is the Q117 family: ?v1 <type> --pred--> country.
func producedInQuery(autoType, country, pred string) *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: autoType},
			{ID: "v2", Name: country, Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: pred}},
	}
}

func personNationalityQuery(country string) *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Person"},
			{ID: "v2", Name: country, Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "nationality"}},
	}
}

func clubInQuery(country string) *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "SoccerClub"},
			{ID: "v2", Name: country, Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "ground"}},
	}
}

func mediumQuery(prodCtr, designerCtr string) *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: prodCtr, Type: "Country"},
			{ID: "v3", Type: "Person"},
			{ID: "v4", Name: designerCtr, Type: "Country"},
		},
		Edges: []query.Edge{
			{From: "v1", To: "v2", Predicate: "assembly"},
			{From: "v1", To: "v3", Predicate: "designer"},
			{From: "v3", To: "v4", Predicate: "nationality"},
		},
	}
}

func complexQuery(prodCtr, designerCtr, engineCtr string) *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: prodCtr, Type: "Country"},
			{ID: "v3", Type: "Person"},
			{ID: "v4", Name: designerCtr, Type: "Country"},
			{ID: "v5", Type: "Engine"},
			{ID: "v6", Type: "Company"},
			{ID: "v7", Name: engineCtr, Type: "Country"},
		},
		Edges: []query.Edge{
			{From: "v1", To: "v2", Predicate: "assembly"},
			{From: "v1", To: "v3", Predicate: "designer"},
			{From: "v3", To: "v4", Predicate: "nationality"},
			{From: "v1", To: "v5", Predicate: "engine"},
			{From: "v5", To: "v6", Predicate: "manufacturer"},
			{From: "v6", To: "v7", Predicate: "locationCountry"},
		},
	}
}

// unionTruth evaluates the union of schema paths from a focus type to one
// anchor entity.
func unionTruth(g *kg.Graph, focusType string, schemas [][]string, anchor string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, schema := range schemas {
		bs, err := sparql.Eval(g, schemaQuery(focusType, schema, anchor), 0)
		if err != nil {
			continue
		}
		for _, u := range sparql.Project(bs, "?v0") {
			if name := g.NodeName(u); !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}

// crossTruth evaluates a conjunction of schema-unions: the focus entity
// must reach anchor[i] through some schema of group[i], for every i.
func crossTruth(g *kg.Graph, focusType string, groups [][][]string, anchors []string) []string {
	sets := make([]map[string]bool, len(groups))
	for i, schemas := range groups {
		sets[i] = make(map[string]bool)
		for _, name := range unionTruth(g, focusType, schemas, anchors[i]) {
			sets[i][name] = true
		}
	}
	var out []string
	for name := range sets[0] {
		ok := true
		for i := 1; i < len(sets); i++ {
			if !sets[i][name] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// abbreviationOf returns the library abbreviation for a generated country
// ("CTR<i>" for "Country_<i>").
func abbreviationOf(country string, countries []string) string {
	for i, c := range countries {
		if c == country {
			return fmt.Sprintf("CTR%d", i)
		}
	}
	return country
}

type combo2 struct{ x, y string }

type combo3 struct{ x, y, z string }

func sortedCombos2(m map[combo2]int) []combo2 {
	keys := make([]combo2, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].y < keys[j].y
	})
	return keys
}

func sortedCombos3(m map[combo3]int) []combo3 {
	keys := make([]combo3, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		a, b := keys[i], keys[j]
		if a.x != b.x {
			return a.x < b.x
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.z < b.z
	})
	return keys
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
