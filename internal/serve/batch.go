// Batch execution: one serving-layer call answering a group of queries.
// The point of a batch is the overlap inside it — repeated query shapes
// and shared sub-query blueprints — so SearchBatch front-loads a group
// compilation (one φ memo across the group, plan cache pre-warmed) and
// then fans the items out through the ordinary Search path, where the
// result cache, singleflight, sub-search sharing and admission control
// apply exactly as they do to independent requests. A batch therefore
// cannot observe different results than its items issued separately —
// only different timing.

package serve

import (
	"context"
	"sync"

	"semkg/internal/core"
	"semkg/internal/query"
)

// BatchItem is one query of a batch request.
type BatchItem struct {
	// Query is the item's query graph.
	Query *query.Graph
	// Opts are the item's search options.
	Opts core.Options
}

// BatchOutcome reports one batch item: exactly one of Result and Err is
// set. Results are shared (possibly with other callers and the cache)
// and must be treated as read-only.
type BatchOutcome struct {
	// Result is the item's search result on success.
	Result *core.Result
	// Err is the item's failure, wrapped exactly as Search would wrap it.
	Err error
}

// SearchBatch answers a group of queries. Outcomes are positional —
// out[i] reports items[i] — and one item's failure never fails its
// neighbours. The group's cacheable plan-cache misses compile together
// under one shared φ memo (core.CompileBatch) before the items run
// concurrently through the full serving path, so common sub-searches
// are shared and repeated shapes pay compilation once.
func (e *Engine) SearchBatch(ctx context.Context, items []BatchItem) []BatchOutcome {
	e.WarmPlans(items)
	out := make([]BatchOutcome, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it BatchItem) {
			defer wg.Done()
			out[i].Result, out[i].Err = e.Search(ctx, it.Query, it.Opts)
		}(i, it)
	}
	wg.Wait()
	return out
}

// WarmPlans group-compiles the batch's distinct, cacheable plan-cache
// misses on a single-graph engine, under one shared φ memo. Compilation
// failures are dropped here: the failing item recompiles on its own
// Search path and surfaces the identical error with per-item
// attribution. On a sharded engine or a disabled plan cache this is a
// no-op — items still share whatever the per-item path shares.
// SearchBatch calls it automatically; the streaming batch endpoint calls
// it before fanning items out as individual streams.
func (e *Engine) WarmPlans(items []BatchItem) {
	eng, gen := e.engineGen()
	ce, ok := eng.(*core.Engine)
	if !ok {
		return
	}
	var keys []string
	seen := make(map[string]bool)
	var specs []core.BatchSpec
	for _, it := range items {
		if it.Query == nil || !cacheable(it.Opts) {
			continue
		}
		if it.Query.Validate() != nil || it.Opts.Validate() != nil {
			continue
		}
		key := planKey(it.Query, it.Opts)
		if seen[key] {
			continue
		}
		if _, ok := e.plans.Get(key); ok {
			continue
		}
		seen[key] = true
		keys = append(keys, key)
		specs = append(specs, core.BatchSpec{Query: it.Query, Opts: it.Opts})
	}
	if len(specs) == 0 {
		return
	}
	plans, errs := ce.CompileBatch(specs)
	if e.currentGen() != gen {
		return // engine swapped underneath the group compile
	}
	for i, p := range plans {
		if errs[i] == nil && p != nil {
			e.plans.Add(keys[i], p)
		}
	}
}
