// Sub-query sharing: the serving-layer cache of shared A* enumerations.
// The result cache and singleflight dedup only byte-identical requests;
// real traffic overlaps partially — different K over one decomposition,
// distinct queries whose decompositions share a sub-query blueprint. The
// compile/run split makes that overlap addressable: core.Plan exposes a
// stable content hash per sub-query blueprint (Plan.SubqueryKey), and
// the exact-mode enumeration over a blueprint is deterministic, so one
// memoized search (core.SharedSearch) can feed every concurrent and
// future run that shares the blueprint.
//
// Keying and invalidation: entries are keyed by (engine generation,
// blueprint hash). The generation prefix makes entries from a superseded
// engine unreachable even when a racing leader inserts after Rebuild's
// purge — the same double protection the result cache uses (purge +
// generation stamp). Entry bodies build lazily under a sync.Once so the
// cache critical section stays O(1) and concurrent misses on one
// blueprint share a single search — the sub-query-level singleflight.
//
// Sharing is invisible by construction (same match sequence, same TA
// assembly) and gated to deterministic exact-mode requests; anything
// else — time-bounded, random pivot, test hooks, sharded engines —
// takes the private path. See DESIGN.md, "Cross-query sharing and batch
// execution".

package serve

import (
	"context"
	"fmt"
	"sync"

	"semkg/internal/core"
)

// subEntry is one cached shared sub-search. The search builds lazily on
// first use: GetOrAdd inserts the empty entry under the cache mutex, and
// the winner of the Once builds the searcher outside it, so a slow
// weight-row materialization never blocks unrelated cache traffic.
// Build errors are shared too — every consumer of a failed entry falls
// back to the private path rather than rebuilding.
type subEntry struct {
	once sync.Once
	src  *core.SharedSearch
	err  error
}

// subKey scopes a blueprint hash to an engine generation.
func subKey(gen uint64, blueprint string) string {
	return fmt.Sprintf("g%d|%s", gen, blueprint)
}

// sharing reports whether the sub-search cache is enabled.
func (e *Engine) sharing() bool { return e.subs.max > 0 }

// streamFor starts the pipeline for one admitted request, routing
// through the sub-query sharing layer when the request qualifies:
// deterministic (shareable == cacheable), exact mode, a single-graph
// engine, and a fully compiled plan. Any sharing setup failure falls
// back to the private path — sharing is an optimization, never a new
// way to fail a request.
func (e *Engine) streamFor(ctx context.Context, eng core.Queryer, gen uint64, plan core.CompiledPlan, opts core.Options, shareable bool) (*core.Stream, error) {
	if shareable && e.sharing() && opts.TimeBound == 0 {
		if ce, ok := eng.(*core.Engine); ok {
			if cp, ok := plan.(*core.Plan); ok && cp.Compiled() {
				if sources := e.subSourcesFor(ce, gen, cp); sources != nil {
					if st, err := ce.StreamPlanShared(ctx, cp, opts, sources); err == nil {
						return st, nil
					}
				}
			}
		}
	}
	return eng.StreamCompiled(ctx, plan, opts)
}

// subSourcesFor resolves one shared enumeration per sub-query blueprint
// of cp, creating missing entries (a miss per blueprint, counted once)
// and joining existing ones. It returns nil — private path — if any
// entry failed to build.
func (e *Engine) subSourcesFor(ce *core.Engine, gen uint64, cp *core.Plan) []core.SubSource {
	n := cp.Subqueries()
	sources := make([]core.SubSource, n)
	for i := 0; i < n; i++ {
		entry, created := e.subs.GetOrAdd(subKey(gen, cp.SubqueryKey(i)), &subEntry{})
		if created {
			e.stats.subMisses.Add(1)
		} else {
			e.stats.subHits.Add(1)
		}
		sub := i
		entry.once.Do(func() {
			entry.src, entry.err = ce.NewSubSearch(cp, sub)
		})
		if entry.err != nil || entry.src == nil {
			return nil
		}
		sources[i] = entry.src
	}
	return sources
}
