package api

import (
	"strings"
	"testing"
)

func TestRepFrameRoundTrip(t *testing.T) {
	frames := []RepFrame{
		{Frame: RepHello, Generation: 7, Epoch: "e-1", Advertise: "http://p:8375"},
		{Frame: RepSnapshot, Generation: 7},
		{Frame: RepDelta, Generation: 8},
		{Frame: RepCommit, Generation: 8},
		{Frame: RepPing, Generation: 8},
		{Frame: RepNode, Name: "Lone Node"},
	}
	for _, f := range frames {
		line, err := EncodeRepFrame(f)
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		got, _, isFrame, err := DecodeRepLine(line)
		if err != nil || !isFrame {
			t.Fatalf("%s: isFrame=%v err=%v", line, isFrame, err)
		}
		if got != f {
			t.Fatalf("round trip %+v != %+v", got, f)
		}
	}
}

func TestDecodeRepLineTriple(t *testing.T) {
	_, tr, isFrame, err := DecodeRepLine([]byte(`{"s":"BMW_i8","p":"assembly","o":"Germany"}`))
	if err != nil || isFrame {
		t.Fatalf("isFrame=%v err=%v", isFrame, err)
	}
	if tr != (IngestTriple{S: "BMW_i8", P: "assembly", O: "Germany"}) {
		t.Fatalf("triple = %+v", tr)
	}
}

func TestDecodeRepLineRejects(t *testing.T) {
	bad := []string{
		`{"frame":"warp"}`,                      // unknown frame kind
		`{"frame":"node"}`,                      // node without a name
		`{"frame":"commit","extra":1}`,          // unknown field
		`{"s":"a","p":"b"}`,                     // triple missing o
		`{"s":"a","p":"b","o":"c","frame":""}`,  // triple with stray empty frame key
		`not json`,                              // not a document
		`{"frame":"commit","generation":"one"}`, // wrong generation type
	}
	for _, line := range bad {
		if _, _, _, err := DecodeRepLine([]byte(line)); err == nil {
			t.Fatalf("accepted %s", line)
		}
	}
}

func TestEncodeRepFrameRequiresKind(t *testing.T) {
	if _, err := EncodeRepFrame(RepFrame{}); err == nil ||
		!strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("err = %v", err)
	}
}
