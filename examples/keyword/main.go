// Keyword search: bare keywords instead of a structured query document.
// The front end tokenizes the input (fusing multi-word names), maps each
// keyword to graph elements through the normalized-name, prefix and
// initials indexes, assembles scored candidate query graphs, executes
// the best candidates concurrently through the serving layer, and blends
// the per-candidate top-k into one entity-deduplicated ranking. The same
// front end answers autocomplete straight from the indexes.
//
// Run with: go run ./examples/keyword
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"semkg"
	"semkg/internal/datagen"
)

func main() {
	ctx := context.Background()
	// Zipf naming gives the world realistic multi-word entity names —
	// the input the keyword tokenizer and the prefix/initials indexes
	// are built for.
	profile := datagen.DBpediaLike(0.4)
	profile.NameStyle = datagen.NameStyleZipf
	ds := datagen.Generate(profile)
	model, err := semkg.Train(ctx, ds.Graph, semkg.TrainConfig{Dim: 48, Epochs: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := semkg.NewEngine(ds.Graph, model, ds.Library)
	if err != nil {
		log.Fatal(err)
	}
	front := semkg.NewKeywordFrontend(semkg.NewServing(eng, semkg.ServeConfig{}), semkg.KeywordConfig{})

	// Derive a keyword input from the first generated benchmark query:
	// the focus type, the predicate, and the anchor entity's name —
	// exactly what a person would type into a search box.
	gq := ds.Simple[0]
	var input, anchor string
	for _, n := range gq.Graph.Nodes {
		if n.Name != "" {
			anchor = n.Name
			input = fmt.Sprintf("%s %s %s", gq.Graph.Nodes[0].Type, gq.Graph.Edges[0].Predicate, n.Name)
		}
	}

	// Autocomplete first: complete a truncated entity fragment from the
	// indexes alone — no search runs.
	frag := anchor[:len(anchor)-3]
	sug := front.Suggest(frag, 3)
	fmt.Printf("suggest %q:\n", frag)
	for _, s := range sug.Items {
		fmt.Printf("  %-30s %-9s via %-8s (count %d)\n", s.Text, s.Kind, s.Via, s.Count)
	}

	// Full keyword search: assemble, execute, blend.
	resp, err := front.Search(ctx, input, semkg.Options{K: 10, Tau: 0.7}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkeywords %q → %d candidate(s), %d executed, in %s\n",
		input, len(resp.Assembly.Candidates), resp.Executed, resp.Elapsed.Round(time.Microsecond))
	for i, c := range resp.Assembly.Candidates {
		if i >= resp.Executed {
			break
		}
		fmt.Printf("  c%d score=%.3f  %s\n", i, c.Score, c.Explain)
	}
	fmt.Println()
	for i, a := range resp.Answers {
		if i >= 5 {
			fmt.Printf("    ... %d more\n", len(resp.Answers)-i)
			break
		}
		fmt.Printf("%2d. %-30s blended=%.3f (candidate %d)\n", i+1, a.Entity, a.Blended, a.Candidate)
	}

	fmt.Println("\nEvery answer names the candidate query that produced it; replay that")
	fmt.Println("candidate as a structured query to get the identical un-blended ranking.")
}
