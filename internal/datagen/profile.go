// Package datagen generates the synthetic knowledge graphs, benchmark
// query workloads, ground-truth validation sets, and noise injections used
// by the experiments (Section VII-A of the paper).
//
// The real evaluation runs on DBpedia, Freebase and YAGO2 with the QALD-4,
// WebQuestions and RDF-3x workloads. Those dumps and benchmarks are
// external resources, so the reproduction substitutes schema-driven
// synthetic worlds that preserve the properties the algorithms depend on
// (see DESIGN.md, Substitutions):
//
//   - every query intention is answerable through several redundant n-hop
//     schemas (the Fig. 1 phenomenon: direct assembly, assembly-via-city,
//     manufacturer-via-company, ...), with a skewed distribution so exact
//     1-hop matching recovers only a minority of answers;
//   - predicates form semantic clusters by usage context, so a trained
//     TransE space recovers assembly ≈ product ≫ designer (Fig. 6);
//   - semantically *wrong* connections exist (cars designed by a person of
//     some nationality), which predicate-agnostic structural baselines
//     cannot distinguish from production schemas;
//   - a synonym/abbreviation library covers the types and salient entity
//     names (the BabelNet substitution).
package datagen

// Profile sizes a synthetic world. All counts are expectations; the
// generator derives concrete entities deterministically from Seed.
type Profile struct {
	// Name labels the dataset ("dbpedia-like", ...).
	Name string
	// Seed drives all randomness.
	Seed int64
	// NameStyle selects node naming: "" (or NameStylePlain) keeps the
	// classic "Kind_<i>" identifiers bit-for-bit; NameStyleZipf spells
	// realistic multi-word names (1–4 words from a zipf-ranked
	// vocabulary). The naming stream is seeded separately from the
	// structural one, so both styles produce the identical world shape
	// and the snapshot/TSV formats are unchanged.
	NameStyle string

	Countries    int
	CitiesPerCtr int // cities per country
	Companies    int
	Autos        int
	People       int
	Engines      int
	Clubs        int
	// FillerTypes pads the type vocabulary (Freebase/YAGO2 have far more
	// entity types than DBpedia); each filler type gets FillerPerType
	// entities loosely attached to the world.
	FillerTypes   int
	FillerPerType int
}

// Node-name styles for Profile.NameStyle.
const (
	// NameStylePlain is the default: "Country_0", "Auto_17", ...
	NameStylePlain = ""
	// NameStyleZipf draws realistic multi-word names from a zipf-ranked
	// token vocabulary, deterministically per seed.
	NameStyleZipf = "zipf"
)

// DBpediaLike returns the profile mirroring the paper's DBpedia relative
// characteristics (moderate type count, production-schema skew of Fig. 1)
// at the given scale (1.0 ≈ 6k entities).
func DBpediaLike(scale float64) Profile {
	return Profile{
		Name:          "dbpedia-like",
		Seed:          11,
		Countries:     s(12, scale),
		CitiesPerCtr:  3,
		Companies:     s(120, scale),
		Autos:         s(2400, scale),
		People:        s(900, scale),
		Engines:       s(500, scale),
		Clubs:         s(240, scale),
		FillerTypes:   s(12, scale),
		FillerPerType: 20,
	}
}

// FreebaseLike mirrors Freebase: a much richer type vocabulary and denser
// relations.
func FreebaseLike(scale float64) Profile {
	return Profile{
		Name:          "freebase-like",
		Seed:          23,
		Countries:     s(14, scale),
		CitiesPerCtr:  4,
		Companies:     s(160, scale),
		Autos:         s(2000, scale),
		People:        s(1400, scale),
		Engines:       s(700, scale),
		Clubs:         s(320, scale),
		FillerTypes:   s(60, scale),
		FillerPerType: 15,
	}
}

// YAGO2Like mirrors YAGO2: more entities, many types, slightly sparser
// query-relevant structure (the paper's YAGO2 recall numbers are the
// lowest of the three datasets).
func YAGO2Like(scale float64) Profile {
	return Profile{
		Name:          "yago2-like",
		Seed:          37,
		Countries:     s(16, scale),
		CitiesPerCtr:  4,
		Companies:     s(140, scale),
		Autos:         s(2600, scale),
		People:        s(1800, scale),
		Engines:       s(600, scale),
		Clubs:         s(400, scale),
		FillerTypes:   s(40, scale),
		FillerPerType: 25,
	}
}

func s(base int, scale float64) int {
	v := int(float64(base) * scale)
	if v < 1 {
		v = 1
	}
	return v
}
