// Package query models query graphs (Definition 2 of the paper) and their
// decomposition into sub-query path graphs (Definition 6, Eq. 1).
//
// A query graph has specific nodes (known name and type, e.g. Germany) and
// target nodes (only the type is known, e.g. ?automobile). Decomposition
// picks a pivot target node and partitions the query edges into path graphs,
// each walked from a specific node towards the pivot; the engine later joins
// sub-query matches at the pivot's node match (Section V-C).
package query

import "fmt"

// Node is a query node. Name == "" marks a target node (unknown entity);
// a non-empty Name marks a specific node. Type may be empty when unknown.
type Node struct {
	ID   string // unique variable id within the query graph, e.g. "v1"
	Name string // known entity name, or "" for target nodes
	Type string // entity type name, or "" when unknown
}

// Specific reports whether the node is a specific (known-entity) node.
func (n Node) Specific() bool { return n.Name != "" }

// Edge is a query edge with a predicate, connecting two query nodes by ID.
// Path matching ignores edge direction (paper footnote 1), but the
// direction is kept for rendering and for the exact-match baselines.
type Edge struct {
	From      string
	To        string
	Predicate string
}

// Graph is a query graph G_Q.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// NodeByID returns the node with the given id and whether it exists.
func (g *Graph) NodeByID(id string) (Node, bool) {
	for _, n := range g.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Targets returns the IDs of all target nodes, in declaration order.
func (g *Graph) Targets() []string {
	var out []string
	for _, n := range g.Nodes {
		if !n.Specific() {
			out = append(out, n.ID)
		}
	}
	return out
}

// Specifics returns the IDs of all specific nodes, in declaration order.
func (g *Graph) Specifics() []string {
	var out []string
	for _, n := range g.Nodes {
		if n.Specific() {
			out = append(out, n.ID)
		}
	}
	return out
}

// Validate checks structural well-formedness: non-empty, unique node IDs,
// edges referencing declared nodes, no self-loop query edges, at least one
// specific and one target node, and connectivity.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("query: no nodes")
	}
	if len(g.Edges) == 0 {
		return fmt.Errorf("query: no edges")
	}
	seen := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.ID == "" {
			return fmt.Errorf("query: node with empty ID")
		}
		if seen[n.ID] {
			return fmt.Errorf("query: duplicate node ID %q", n.ID)
		}
		seen[n.ID] = true
		if n.Name == "" && n.Type == "" {
			return fmt.Errorf("query: node %q has neither name nor type", n.ID)
		}
	}
	for i, e := range g.Edges {
		if !seen[e.From] || !seen[e.To] {
			return fmt.Errorf("query: edge %d references undeclared node (%q,%q)", i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("query: edge %d is a self loop on %q", i, e.From)
		}
		if e.Predicate == "" {
			return fmt.Errorf("query: edge %d has no predicate", i)
		}
	}
	if len(g.Specifics()) == 0 {
		return fmt.Errorf("query: no specific node (nothing to anchor the search)")
	}
	if len(g.Targets()) == 0 {
		return fmt.Errorf("query: no target node (nothing to search for)")
	}
	// Connectivity over the undirected view.
	adj := g.adjacency()
	visited := map[string]bool{g.Nodes[0].ID: true}
	stack := []string{g.Nodes[0].ID}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, inc := range adj[cur] {
			next := g.Edges[inc].other(cur)
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	if len(visited) != len(g.Nodes) {
		return fmt.Errorf("query: graph is disconnected")
	}
	return nil
}

func (e Edge) other(id string) string {
	if e.From == id {
		return e.To
	}
	return e.From
}

// adjacency returns, per node ID, the indexes of incident edges.
func (g *Graph) adjacency() map[string][]int {
	adj := make(map[string][]int, len(g.Nodes))
	for i, e := range g.Edges {
		adj[e.From] = append(adj[e.From], i)
		adj[e.To] = append(adj[e.To], i)
	}
	return adj
}

// bfsDist returns hop distances from src over the undirected query graph.
func (g *Graph) bfsDist(src string) map[string]int {
	adj := g.adjacency()
	dist := map[string]int{src: 0}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, inc := range adj[cur] {
			next := g.Edges[inc].other(cur)
			if _, ok := dist[next]; !ok {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return dist
}
