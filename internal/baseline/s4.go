package baseline

import (
	"sort"
	"strings"

	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/sparql"
)

// S4 reproduces the S4 baseline [19]: semantic SPARQL similarity search
// that mines n-hop structural patterns in advance from prior-knowledge
// semantic instances (the paper's "e.g., given by Patty") and answers a
// query edge by substituting the mined patterns. Its accuracy is sensitive
// to the quality of the prior knowledge, which the paper highlights as its
// main weakness versus the embedding-guided approach.
//
// Offline: instances are aggregated into patterns (predicate paths) with
// support counts; patterns with support >= MinSupport survive. Online: each
// query edge expands into the surviving patterns, evaluated exactly through
// the conjunctive-query substrate; answers are ranked by pattern support.
type S4 struct {
	g *kg.Graph
	// patterns maps focusType|anchorType to mined predicate paths.
	patterns map[string][]minedPattern
	// MinSupport is the minimum number of prior instances for a pattern
	// to be used. Default 2.
	MinSupport int
}

type minedPattern struct {
	preds   []string
	support int
}

// PriorInstance mirrors datagen.PriorInstance without importing it (the
// baseline must not depend on the generator).
type PriorInstance struct {
	FocusType  string
	AnchorType string
	Predicates []string
}

// NewS4 mines patterns from the prior instances and returns the baseline.
func NewS4(g *kg.Graph, prior []PriorInstance) *S4 {
	s := &S4{g: g, patterns: make(map[string][]minedPattern), MinSupport: 2}
	counts := make(map[string]map[string]int)
	for _, in := range prior {
		key := in.FocusType + "|" + in.AnchorType
		if counts[key] == nil {
			counts[key] = make(map[string]int)
		}
		counts[key][strings.Join(in.Predicates, "/")]++
	}
	for key, m := range counts {
		for path, c := range m {
			if c < s.MinSupport {
				continue
			}
			s.patterns[key] = append(s.patterns[key], minedPattern{
				preds:   strings.Split(path, "/"),
				support: c,
			})
		}
		sort.Slice(s.patterns[key], func(i, j int) bool {
			a, b := s.patterns[key][i], s.patterns[key][j]
			if a.support != b.support {
				return a.support > b.support
			}
			return strings.Join(a.preds, "/") < strings.Join(b.preds, "/")
		})
	}
	return s
}

// Name implements Method.
func (s *S4) Name() string { return "S4" }

// Search implements Method. It only supports the focus-to-anchor query
// shape the patterns were mined for; query edges between other node pairs
// are evaluated exactly (1-hop).
func (s *S4) Search(q *query.Graph, focus string, k int) []Ranked {
	if err := q.Validate(); err != nil {
		return nil
	}
	focusNode, ok := q.NodeByID(focus)
	if !ok {
		return nil
	}
	scores := make(map[string]float64)
	// For each query edge incident to the focus whose other endpoint is a
	// specific node, substitute the mined patterns.
	for _, e := range q.Edges {
		var anchorID string
		switch {
		case e.From == focus:
			anchorID = e.To
		case e.To == focus:
			anchorID = e.From
		default:
			continue
		}
		anchor, ok := q.NodeByID(anchorID)
		if !ok || !anchor.Specific() {
			continue
		}
		key := focusNode.Type + "|" + anchor.Type
		for _, pat := range s.patterns[key] {
			for _, name := range s.evalPattern(focusNode.Type, pat.preds, anchor.Name) {
				scores[name] += float64(pat.support)
			}
		}
	}
	out := make([]Ranked, 0, len(scores))
	for name, sc := range scores {
		out = append(out, Ranked{Entity: name, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func (s *S4) evalPattern(focusType string, preds []string, anchor string) []string {
	q := sparql.Query{Patterns: []sparql.Pattern{
		{Subject: "?v0", Predicate: kg.TypePredicate, Object: focusType},
	}}
	cur := "?v0"
	for i, p := range preds {
		next := anchor
		if i < len(preds)-1 {
			next = "?v" + string(rune('1'+i))
		}
		q.Patterns = append(q.Patterns, sparql.Pattern{Subject: cur, Predicate: p, Object: next})
		cur = next
	}
	bs, err := sparql.Eval(s.g, q, 0)
	if err != nil {
		return nil
	}
	var out []string
	for _, u := range sparql.Project(bs, "?v0") {
		out = append(out, s.g.NodeName(u))
	}
	return out
}
