// Package ta implements the threshold-algorithm-based final match assembly
// of Section V-C (Fagin et al.'s TA, in the no-random-access flavour):
// sub-query match streams are consumed in non-increasing pss order, matches
// sharing the same pivot node match u^p join into final matches, and per-
// candidate lower/upper score bounds (Eq. 8-11) let the assembly stop long
// before exhausting the streams (Theorem 3: stop when L_k >= U_max).
package ta

import (
	"sort"

	"semkg/internal/astar"
	"semkg/internal/kg"
)

// Stream yields sub-query matches in non-increasing pss order.
// *astar.Searcher implements it via its Next method.
type Stream interface {
	Next() (astar.Match, bool)
}

// SliceStream adapts a pre-collected, pss-sorted match slice (the
// time-bounded mode's M̂_i sets) to the Stream interface.
type SliceStream struct {
	Matches []astar.Match
	pos     int
}

// Next returns the next match in the slice.
func (s *SliceStream) Next() (astar.Match, bool) {
	if s.pos >= len(s.Matches) {
		return astar.Match{}, false
	}
	m := s.Matches[s.pos]
	s.pos++
	return m, true
}

// Final is an assembled final match for the whole query graph: one
// sub-query match per stream, all containing the same pivot node match.
type Final struct {
	Pivot kg.NodeID
	// Score is the match score S_m(u^p): the sum of the parts' pss (Eq. 2).
	Score float64
	// Parts holds the joined sub-query matches, indexed by stream.
	Parts []astar.Match
}

// Stats reports assembly effort, for the early-termination experiments.
type Stats struct {
	// Accesses counts sorted accesses across all streams.
	Accesses int
	// Rounds counts round-robin passes.
	Rounds int
	// Exhausted reports whether every stream ran dry before termination.
	Exhausted bool
}

// candidate tracks the NRA bookkeeping for one pivot node match.
type candidate struct {
	pivot kg.NodeID
	seen  []bool
	parts []astar.Match
	lower float64
	nSeen int
}

// Assembler is the incremental form of the TA assembly: each Step consumes
// one round-robin round of sorted accesses and re-evaluates the Theorem 3
// termination condition, so a caller can observe the provisional top-k and
// its lower/upper bounds between rounds (the anytime view that the
// streaming API exposes as events). Assemble drives an Assembler to
// completion and is byte-identical to the seed's one-shot implementation.
//
// An Assembler is not safe for concurrent use.
type Assembler struct {
	streams []Stream
	k       int
	psiCur  []float64 // pss of latest access per stream (Eq. 11's ψcur)
	alive   []bool
	cands   map[kg.NodeID]*candidate
	stats   Stats
	done    bool
	finals  []Final

	// Round snapshot, refreshed by Step: the current best complete
	// candidates (≤ k). Bounds are computed lazily (boundsDirty) so that
	// rounds nobody observes — the batch path — pay nothing beyond the
	// seed's per-round work.
	top         []*candidate
	lk, umax    float64
	boundsDirty bool
}

// NewAssembler prepares an assembly over the given sorted streams. With
// k <= 0 or no streams the assembler is born terminated with no finals,
// mirroring Assemble's edge cases.
func NewAssembler(streams []Stream, k int) *Assembler {
	a := &Assembler{streams: streams, k: k}
	if k <= 0 || len(streams) == 0 {
		a.done = true
		return a
	}
	n := len(streams)
	a.psiCur = make([]float64, n)
	a.alive = make([]bool, n)
	for i := range a.psiCur {
		a.psiCur[i] = 1 // pss is bounded by 1 before the first access
		a.alive[i] = true
	}
	a.cands = make(map[kg.NodeID]*candidate)
	return a
}

// upper is the Eq. 11 upper bound of a candidate: its known lower bound
// plus ψcur for every stream it has not appeared in yet.
func (a *Assembler) upper(c *candidate) float64 {
	u := c.lower
	for i := range a.streams {
		if !c.seen[i] {
			u += a.psiCur[i]
		}
	}
	return u
}

// Step runs one round-robin round of sorted accesses and the termination
// check. It returns false once the assembly has terminated (Theorem 3
// satisfied or every stream exhausted); Finals then holds the result.
func (a *Assembler) Step() bool {
	if a.done {
		return false
	}
	n := len(a.streams)
	a.stats.Rounds++
	anyAlive := false
	for i, st := range a.streams {
		if !a.alive[i] {
			continue
		}
		m, ok := st.Next()
		a.stats.Accesses++
		if !ok {
			a.alive[i] = false
			a.psiCur[i] = 0
			continue
		}
		anyAlive = true
		a.psiCur[i] = m.PSS
		p := m.End()
		c := a.cands[p]
		if c == nil {
			c = &candidate{pivot: p, seen: make([]bool, n), parts: make([]astar.Match, n)}
			a.cands[p] = c
		}
		if !c.seen[i] {
			// First (= best) match for this pivot in stream i.
			c.seen[i] = true
			c.parts[i] = m
			c.lower += m.PSS
			c.nSeen++
		}
	}

	// Termination check (Theorem 3): rank complete candidates by exact
	// score; the L_k/U_max comparison itself is evaluated only when it
	// can terminate the assembly, exactly as the one-shot loop did (the
	// bound computation is O(|candidates|) and would otherwise turn the
	// assembly quadratic).
	var complete []*candidate
	for _, c := range a.cands {
		if c.nSeen == n {
			complete = append(complete, c)
		}
	}
	sort.Slice(complete, func(i, j int) bool {
		if complete[i].lower != complete[j].lower {
			return complete[i].lower > complete[j].lower
		}
		return complete[i].pivot < complete[j].pivot
	})
	top := complete
	if len(top) > a.k {
		top = top[:a.k]
	}
	a.top = top
	a.boundsDirty = true

	if len(complete) >= a.k || !anyAlive {
		if !anyAlive {
			a.stats.Exhausted = true
			a.finals = finalize(top)
			a.done = true
			return false
		}
		lk, umax := a.bounds()
		if len(top) == a.k && lk >= umax {
			a.finals = finalize(top)
			a.done = true
			return false
		}
	}
	return true
}

// bounds computes (and caches per round) L_k — the k-th best complete
// score, 0 until k complete candidates exist — and U_max — the best
// Eq. 11 upper bound among everything outside the current top, including
// the virtual never-seen candidate whose upper bound is Σ ψcur.
func (a *Assembler) bounds() (float64, float64) {
	if !a.boundsDirty {
		return a.lk, a.umax
	}
	lk := 0.0
	if len(a.top) == a.k {
		lk = a.top[a.k-1].lower
	}
	umax := 0.0
	for i := range a.psiCur {
		umax += a.psiCur[i] // virtual unseen candidate
	}
	inTop := make(map[kg.NodeID]bool, len(a.top))
	for _, c := range a.top {
		inTop[c.pivot] = true
	}
	for _, c := range a.cands {
		if inTop[c.pivot] {
			continue
		}
		if u := a.upper(c); u > umax {
			umax = u
		}
	}
	a.lk, a.umax = lk, umax
	a.boundsDirty = false
	return lk, umax
}

// Run drives the assembler to completion and returns the finals. onRound,
// when non-nil, is invoked after every completed round — including the
// terminal one — so a caller can observe Provisional/Bounds between
// rounds; both streaming consumers (exact and time-bounded) share this
// loop.
func (a *Assembler) Run(onRound func(round int)) []Final {
	prev := a.stats.Rounds
	for {
		more := a.Step()
		if r := a.stats.Rounds; r > prev {
			prev = r
			if onRound != nil {
				onRound(r)
			}
		}
		if !more {
			return a.finals
		}
	}
}

// Done reports whether the assembly has terminated.
func (a *Assembler) Done() bool { return a.done }

// Finals returns the assembled top-k once Done; nil before termination.
func (a *Assembler) Finals() []Final { return a.finals }

// Stats returns the effort counters accumulated so far.
func (a *Assembler) Stats() Stats { return a.stats }

// Bounds returns the current L_k (the k-th best complete score; 0 until k
// complete candidates exist) and U_max (the best upper bound among
// non-top candidates, including the virtual never-seen one). Valid after
// the first Step; computed lazily, so only callers observing the bounds
// pay for them.
func (a *Assembler) Bounds() (lk, umax float64) { return a.bounds() }

// Provisional returns a snapshot of the current best complete candidates
// (at most k, in final rank order). The parts slices are copied, so the
// snapshot stays valid while the assembly continues.
func (a *Assembler) Provisional() []Final {
	out := make([]Final, len(a.top))
	for i, c := range a.top {
		parts := make([]astar.Match, len(c.parts))
		copy(parts, c.parts)
		out[i] = Final{Pivot: c.pivot, Score: c.lower, Parts: parts}
	}
	return out
}

// Assemble runs the TA-based assembly: it consumes the streams in
// round-robin sorted access, joins matches at their pivot (end) node, and
// returns the top-k final matches by score together with effort statistics.
// Only complete candidates — pivots matched in every stream — are returned;
// a query answer must cover all sub-query graphs.
//
// The streams must be in non-increasing pss order; pulling more matches may
// resume an underlying A* search (the paper's "repeat the A* semantic
// search until sufficient final matches are returned").
func Assemble(streams []Stream, k int) ([]Final, Stats) {
	a := NewAssembler(streams, k)
	finals := a.Run(nil)
	return finals, a.Stats()
}

func finalize(cs []*candidate) []Final {
	out := make([]Final, len(cs))
	for i, c := range cs {
		out[i] = Final{Pivot: c.pivot, Score: c.lower, Parts: c.parts}
	}
	return out
}
