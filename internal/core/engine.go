// Package core orchestrates the full semantic-guided graph query pipeline
// of the paper (Fig. 5): query-graph decomposition (Section III), on-the-fly
// semantic graph weighting (Section IV), one A* semantic search per
// sub-query graph (Section V-A/B, run concurrently — "each thread represents
// an A* semantic search for a sub-query graph"), TA-based final match
// assembly at the pivot (Section V-C), and the response-time-bounded
// approximate mode (Section VI).
//
// The root package semkg re-exports this engine as the public API.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"semkg/internal/astar"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/ta"
	"semkg/internal/tbq"
	"semkg/internal/transform"
)

// Engine answers query graphs over one knowledge graph using one trained
// predicate semantic space. It is safe for concurrent use: all mutable
// search state lives per call.
type Engine struct {
	g       *kg.Graph
	space   *embed.Space
	matcher *transform.Matcher
	// rows shares semantic weight rows (per resolved query predicate)
	// across concurrent searchers and repeated queries for the engine's
	// lifetime; the rows are query-independent (see semgraph.RowCache).
	rows *semgraph.RowCache

	calOnce    sync.Once
	perMatchTA time.Duration
}

// NewEngine builds an engine over g with the predicate space (usually
// model.Space(g) from a TransE run) and the synonym/abbreviation library
// (nil for identical-only node matching plus heuristic abbreviations).
func NewEngine(g *kg.Graph, space *embed.Space, lib *transform.Library) (*Engine, error) {
	if g == nil || space == nil {
		return nil, fmt.Errorf("core: nil graph or space")
	}
	if space.Len() != g.NumPredicates() {
		return nil, fmt.Errorf("core: space covers %d predicates, graph has %d", space.Len(), g.NumPredicates())
	}
	rows, err := semgraph.NewRowCache(g, space)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g, space: space, matcher: transform.NewMatcher(g, lib), rows: rows}, nil
}

// Graph returns the engine's knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// Space returns the engine's predicate semantic space.
func (e *Engine) Space() *embed.Space { return e.space }

// Matcher returns the engine's node matcher (the φ relation).
func (e *Engine) Matcher() *transform.Matcher { return e.matcher }

// Rows returns the engine's predicate weight-row cache.
func (e *Engine) Rows() *semgraph.RowCache { return e.rows }

// Options configures one search call.
type Options struct {
	// K is the number of answers to return. Default 10.
	K int
	// Tau is the pss threshold τ. Default 0.8 (the paper's default).
	Tau float64
	// MaxHops is the user-desired path length n̂. Default 4.
	MaxHops int
	// Strategy selects the pivot (minCost by default).
	Strategy query.PivotStrategy
	// PivotNode forces an explicit pivot query node (Table V's per-pivot
	// comparison); empty uses Strategy.
	PivotNode string
	// Rng is used by the RandomPivot strategy.
	Rng *rand.Rand
	// PruneVisited enables the paper's visited-set pruning (see astar).
	PruneVisited bool
	// NoHeuristic disables the m(u) estimate factor (ablation).
	NoHeuristic bool

	// TimeBound, when positive, switches to the response-time-bounded
	// mode (TBQ, Section VI) with this bound T.
	TimeBound time.Duration
	// AlertRatio is Algorithm 3's r% (default 0.8). TBQ mode only.
	AlertRatio float64
	// Clock abstracts time in TBQ mode (tests); nil = wall clock.
	Clock tbq.Clock
}

// BadRequestError marks an error as caused by the caller's query or
// options (validation, decomposition, pivot selection) rather than by the
// engine: an HTTP front end maps it to a 400, not a 500. Unwrap exposes
// the underlying error.
type BadRequestError struct{ Err error }

func (e BadRequestError) Error() string { return e.Err.Error() }

// Unwrap supports errors.Is/As.
func (e BadRequestError) Unwrap() error { return e.Err }

// badRequest wraps err as a BadRequestError (nil stays nil).
func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return BadRequestError{Err: err}
}

// Validate reports out-of-range option values with explicit errors instead
// of the silent clamping the fields would otherwise fall through to. Zero
// values are valid and mean "use the default" (K=10, τ=0.8, n̂=4,
// r%=0.8); Search, Stream and the HTTP service all validate before
// running, so a bad request fails fast instead of searching with
// surprising parameters.
func (o Options) Validate() error {
	if o.K < 0 {
		return fmt.Errorf("core: K = %d out of range (must be positive, or 0 for the default 10)", o.K)
	}
	if o.Tau < 0 || o.Tau > 1 {
		return fmt.Errorf("core: Tau = %v out of range (must be in (0,1], or 0 for the default 0.8)", o.Tau)
	}
	if o.MaxHops < 0 {
		return fmt.Errorf("core: MaxHops = %d out of range (must be positive, or 0 for the default 4)", o.MaxHops)
	}
	if o.TimeBound < 0 {
		return fmt.Errorf("core: TimeBound = %v out of range (must be non-negative; 0 selects the exact SGQ mode)", o.TimeBound)
	}
	if o.AlertRatio < 0 || o.AlertRatio > 1 {
		return fmt.Errorf("core: AlertRatio = %v out of range (must be in (0,1], or 0 for the default 0.8)", o.AlertRatio)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.Tau <= 0 {
		o.Tau = 0.8
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 4
	}
	return o
}

// Normalized returns the options with the engine defaults applied to the
// zero fields (K=10, τ=0.8, n̂=4). Two option values that normalize
// equally run the identical pipeline, so cache keys should be computed
// from the normalized form — "K unset" and "K: 10" then share an entry.
func (o Options) Normalized() Options { return o.withDefaults() }

// PathStep is one knowledge-graph edge of an answer path, rendered with
// names for display.
type PathStep struct {
	FromName  string
	Predicate string
	ToName    string
}

// SubMatch is one sub-query graph's matched path inside an answer.
type SubMatch struct {
	PSS   float64
	Steps []PathStep
}

// Answer is a final match: an entity for the pivot query node plus the
// joined sub-query paths and the match score (Eq. 2).
type Answer struct {
	Pivot     kg.NodeID
	PivotName string
	Score     float64
	Parts     []SubMatch
	// Bindings maps every query node ID covered by the sub-queries to its
	// matched entity name (target nodes get their discovered entities;
	// specific nodes their anchors). When sub-queries disagree on a shared
	// non-pivot node, the first sub-query's assignment wins — consistency
	// is only enforced at the pivot, as in the paper.
	Bindings map[string]string
}

// Result is the outcome of a search.
type Result struct {
	Answers       []Answer
	Decomposition *query.Decomposition
	Elapsed       time.Duration
	// Approximate is true in TBQ mode when the time bound stopped the
	// search before exhaustion (the answers may differ from the exact
	// top-k; more time refines them, Theorem 4).
	Approximate bool
	// SearchStats aggregates per-sub-query search effort.
	SearchStats []astar.Stats
	// ShardEffort aggregates per-shard search effort, indexed by shard
	// (sharded engine runs only; nil on the single engine and on halo
	// fallbacks). The popped/pushed counters are the work-distribution
	// measure the shard benchmark's critical-path speedup model uses.
	ShardEffort []astar.Stats
	// Collected is |M̂_i| per sub-query (TBQ mode only).
	Collected []int
}

// Entities returns the answer entity names (the pivot bindings), in rank
// order.
func (r *Result) Entities() []string {
	out := make([]string, len(r.Answers))
	for i, a := range r.Answers {
		out[i] = a.PivotName
	}
	return out
}

// EntitiesOf returns the distinct entities bound to the given query node
// across the answers, in rank order. Use this when the query's focus
// variable is not the pivot chosen by the decomposition.
func (r *Result) EntitiesOf(nodeID string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range r.Answers {
		if name, ok := a.Bindings[nodeID]; ok && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// costEstimator adapts the engine to query.CostEstimator (Eq. 1). It
// resolves φ through the per-search memo, so buildSearchers reuses the
// match sets instead of recomputing them.
type costEstimator struct {
	e    *Engine
	memo *transform.Memo
}

func (c costEstimator) AnchorCount(name, typeName string) int {
	return len(c.memo.MatchNode(name, typeName))
}

func (c costEstimator) AvgDegree() float64 { return c.e.g.AvgDegree() }

// Search runs the semantic-guided graph query (SGQ), or the time-bounded
// variant (TBQ) when opts.TimeBound > 0, and returns the top-k answers.
// It is the batch form of Stream: the same pipeline, consumed to
// completion, with the event stream discarded.
//
// A query node that matches nothing in the knowledge graph (the paper's
// G1_Q mismatch case) yields an empty answer set, not an error: the query
// is well-formed, the graph just has no matches.
func (e *Engine) Search(ctx context.Context, q *query.Graph, opts Options) (*Result, error) {
	s, err := e.stream(ctx, q, opts, true)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

func (e *Engine) decompose(q *query.Graph, opts Options, memo *transform.Memo) (*query.Decomposition, error) {
	dopts := query.Options{
		Strategy:  opts.Strategy,
		Rng:       opts.Rng,
		Estimator: costEstimator{e, memo},
		MaxHops:   opts.MaxHops,
	}
	if opts.PivotNode != "" {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		return query.DecomposeWithPivot(q, opts.PivotNode, dopts)
	}
	return query.Decompose(q, dopts)
}

// resumeStream serves prefetched matches first, then resumes the underlying
// search ("we repeat the A* semantic search for each g_i until sufficient
// final matches for G_Q are returned") — a private searcher or a shared
// enumeration cursor, both sorted. Context cancellation ends the stream,
// turning the assembly into an anytime operation.
type resumeStream struct {
	ctx    context.Context
	buf    []astar.Match
	pos    int
	search ta.Stream
}

func (r *resumeStream) Next() (astar.Match, bool) {
	if r.pos < len(r.buf) {
		m := r.buf[r.pos]
		r.pos++
		return m, true
	}
	if r.ctx.Err() != nil {
		return astar.Match{}, false
	}
	return r.search.Next()
}

func (e *Engine) renderAnswers(finals []ta.Final, d *query.Decomposition) []Answer {
	answers := make([]Answer, len(finals))
	for i, f := range finals {
		a := Answer{
			Pivot:     f.Pivot,
			PivotName: e.g.NodeName(f.Pivot),
			Score:     f.Score,
			Bindings:  make(map[string]string),
		}
		for pi, part := range f.Parts {
			sm := SubMatch{PSS: part.PSS}
			for _, eid := range part.Edges {
				edge := e.g.EdgeAt(eid)
				// Render with the edge's true direction (paths ignore
				// directionality, but the fact reads one way).
				sm.Steps = append(sm.Steps, PathStep{
					FromName:  e.g.NodeName(edge.Src),
					Predicate: e.g.PredName(edge.Pred),
					ToName:    e.g.NodeName(edge.Dst),
				})
			}
			a.Parts = append(a.Parts, sm)
			// Bindings: the sub-query's query nodes anchor at the path's
			// start and at each segment end.
			sub := d.Subs[pi]
			bind := func(qid string, u kg.NodeID) {
				if _, taken := a.Bindings[qid]; !taken {
					a.Bindings[qid] = e.g.NodeName(u)
				}
			}
			bind(sub.NodeIDs[0], part.Nodes[0])
			for s, pos := range part.SegEnds {
				bind(sub.NodeIDs[s+1], part.Nodes[pos])
			}
		}
		answers[i] = a
	}
	return answers
}

// perMatchCost lazily calibrates Algorithm 3's empirical per-match TA time.
func (e *Engine) perMatchCost() time.Duration {
	e.calOnce.Do(func() { e.perMatchTA = tbq.Calibrate() })
	return e.perMatchTA
}

// PerMatchCost exposes the calibrated per-match TA assembly time t of
// Algorithm 3. The serving layer seeds its queue-wait estimator from it
// before any request has completed.
func (e *Engine) PerMatchCost() time.Duration { return e.perMatchCost() }
