package serve

import (
	"crypto/sha256"
	"fmt"
	"hash"

	"semkg/internal/core"
	"semkg/internal/query"
)

// Cache keys are SHA-256 digests over a canonical, length-prefixed
// serialization of the query graph and the normalized options — length
// prefixes make the encoding injective (no separator-injection
// collisions). Node and edge declaration order is deliberately preserved:
// decomposition walks the query in declaration order, so two documents
// that differ only in ordering may legally decompose differently and must
// not share an entry.

// writeQuery serializes q canonically into h.
func writeQuery(h hash.Hash, q *query.Graph) {
	fmt.Fprintf(h, "q:%d,%d;", len(q.Nodes), len(q.Edges))
	for _, n := range q.Nodes {
		fmt.Fprintf(h, "n%d:%s%d:%s%d:%s", len(n.ID), n.ID, len(n.Name), n.Name, len(n.Type), n.Type)
	}
	for _, e := range q.Edges {
		fmt.Fprintf(h, "e%d:%s%d:%s%d:%s", len(e.From), e.From, len(e.To), e.To, len(e.Predicate), e.Predicate)
	}
}

// canonOpts normalizes the options for hashing so that requests which run
// the identical pipeline share keys: engine defaults applied (K unset ==
// K 10), the tbq AlertRatio default applied, AlertRatio zeroed entirely in
// the exact mode (SGQ ignores it), and Strategy zeroed when an explicit
// PivotNode overrides it.
func canonOpts(opts core.Options) core.Options {
	o := opts.Normalized()
	if o.AlertRatio <= 0 {
		o.AlertRatio = 0.8 // tbq.Config default
	}
	if o.TimeBound == 0 {
		o.AlertRatio = 0
	}
	if o.PivotNode != "" {
		o.Strategy = 0
	}
	return o
}

// resultKey identifies one (query, options) request: every option field
// with a wire form participates, so requests that could answer differently
// never collide.
func resultKey(q *query.Graph, opts core.Options) string {
	o := canonOpts(opts)
	h := sha256.New()
	writeQuery(h, q)
	fmt.Fprintf(h, "|k=%d|tau=%g|hops=%d|strat=%d|pivot=%d:%s|pv=%t|nh=%t|tb=%d|ar=%g",
		o.K, o.Tau, o.MaxHops, o.Strategy, len(o.PivotNode), o.PivotNode,
		o.PruneVisited, o.NoHeuristic, int64(o.TimeBound), o.AlertRatio)
	return string(h.Sum(nil))
}

// planKey identifies one compiled query shape: only the compile-relevant
// options participate (core.Plan's contract), so the same plan serves any
// K or time budget.
func planKey(q *query.Graph, opts core.Options) string {
	o := canonOpts(opts)
	h := sha256.New()
	writeQuery(h, q)
	fmt.Fprintf(h, "|tau=%g|hops=%d|strat=%d|pivot=%d:%s|pv=%t|nh=%t",
		o.Tau, o.MaxHops, o.Strategy, len(o.PivotNode), o.PivotNode,
		o.PruneVisited, o.NoHeuristic)
	return string(h.Sum(nil))
}

// cacheable reports whether a request is deterministic enough to cache and
// deduplicate: process-local test hooks (Clock, Rng) and the random pivot
// strategy make otherwise-identical requests diverge, so they bypass every
// cache and run the pipeline directly (still admission-controlled).
func cacheable(opts core.Options) bool {
	return opts.Clock == nil && opts.Rng == nil && opts.Strategy != query.RandomPivot
}
