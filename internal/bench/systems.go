package bench

import (
	"context"
	"math/rand"
	"time"

	"semkg/internal/baseline"
	"semkg/internal/datagen"
)

// System is a named query-answering method under evaluation: it answers a
// benchmark query with a ranked entity list and reports its response time.
type System struct {
	Name string
	Run  func(q datagen.GenQuery, k int) (answers []string, elapsed time.Duration)
}

// SGQ returns the semantic-guided query system (the exact pipeline).
func (e *Env) SGQ() System {
	return System{
		Name: "SGQ",
		Run: func(q datagen.GenQuery, k int) ([]string, time.Duration) {
			res, err := e.Engine.Search(context.Background(), q.Graph, e.SearchOptions(k))
			if err != nil {
				return nil, 0
			}
			return res.EntitiesOf(q.Focus), res.Elapsed
		},
	}
}

// TBQ returns the time-bounded system with the bound set to factor × the
// measured SGQ time for the same query (the paper's TBQ-0.9 sets 90%).
func (e *Env) TBQ(factor float64) System {
	return System{
		Name: "TBQ-0.9",
		Run: func(q datagen.GenQuery, k int) ([]string, time.Duration) {
			ref, err := e.Engine.Search(context.Background(), q.Graph, e.SearchOptions(k))
			if err != nil {
				return nil, 0
			}
			bound := time.Duration(float64(ref.Elapsed) * factor)
			return e.TBQBounded(q, k, bound)
		},
	}
}

// TBQBounded runs one time-bounded query with an explicit bound.
func (e *Env) TBQBounded(q datagen.GenQuery, k int, bound time.Duration) ([]string, time.Duration) {
	opts := e.SearchOptions(k)
	opts.TimeBound = bound
	res, err := e.Engine.Search(context.Background(), q.Graph, opts)
	if err != nil {
		return nil, 0
	}
	return res.EntitiesOf(q.Focus), res.Elapsed
}

// Baselines returns the comparison systems of Figures 12-14:
// {GraB, S4, QGA, p-hom}. S4's prior is sampled at the given quality.
func (e *Env) Baselines(priorQuality float64) []System {
	ds := e.Dataset
	g := ds.Graph
	prior := convertPrior(ds.Prior(100, priorQuality, rand.New(rand.NewSource(17))))
	methods := []baseline.Method{
		baseline.NewGraB(g),
		baseline.NewS4(g, prior),
		baseline.NewQGA(g, ds.Library),
		baseline.NewPHom(g),
	}
	return wrapMethods(methods)
}

// AllBaselines returns every Table I comparator:
// {gStore, SLQ, NeMa, S4, p-hom, GraB, QGA}.
func (e *Env) AllBaselines(priorQuality float64) []System {
	ds := e.Dataset
	g := ds.Graph
	prior := convertPrior(ds.Prior(100, priorQuality, rand.New(rand.NewSource(17))))
	methods := []baseline.Method{
		baseline.NewGStore(g),
		baseline.NewSLQ(g, ds.Library),
		baseline.NewNeMa(g),
		baseline.NewS4(g, prior),
		baseline.NewPHom(g),
		baseline.NewGraB(g),
		baseline.NewQGA(g, ds.Library),
	}
	return wrapMethods(methods)
}

func wrapMethods(methods []baseline.Method) []System {
	out := make([]System, len(methods))
	for i, m := range methods {
		m := m
		out[i] = System{
			Name: m.Name(),
			Run: func(q datagen.GenQuery, k int) ([]string, time.Duration) {
				start := time.Now()
				ranked := m.Search(q.Graph, q.Focus, k)
				elapsed := time.Since(start)
				names := make([]string, len(ranked))
				for j, r := range ranked {
					names[j] = r.Entity
				}
				return names, elapsed
			},
		}
	}
	return out
}

func convertPrior(in []datagen.PriorInstance) []baseline.PriorInstance {
	out := make([]baseline.PriorInstance, len(in))
	for i, p := range in {
		out[i] = baseline.PriorInstance{
			FocusType:  p.FocusType,
			AnchorType: p.AnchorType,
			Predicates: p.Predicates,
		}
	}
	return out
}
