// Command semkgd serves semantic-guided top-k search over HTTP. It loads
// a knowledge graph and a trained embedding model once, then answers
// query-graph searches on two endpoints:
//
//	POST /v1/search   batch: one JSON result when the search finishes
//	POST /v1/stream   streaming: NDJSON events — phase transitions,
//	                  per-sub-query progress, provisional top-k snapshots
//	                  with TA bounds, and a terminal result line
//	POST /v1/batch    a group of queries in one call: the group compiles
//	                  together and overlapping sub-query searches run
//	                  once; per-query results (or, with ?stream=1, one
//	                  NDJSON connection of index/id-tagged event lines)
//
// plus GET /healthz (liveness and graph shape) and GET /debug/vars
// (expvar counters). Request bodies are api.SearchRequest documents; bad
// queries and out-of-range options return 400 with a JSON error.
//
// Requests pass through the engine-level serving layer (internal/serve):
// a result cache and a plan cache absorb repeated queries, concurrent
// identical requests collapse to one pipeline execution, different
// queries sharing a sub-query blueprint share one A* enumeration
// (-sub-cache), and a bounded worker pool sheds overload — a shed
// request gets 429 with a Retry-After header instead of queueing past
// its time bound. Cache and admission counters are exported under the
// "semkgd_serve" expvar key.
//
//	semkgd -graph g.tsv -model m.bin -addr :8375 \
//	       -workers 8 -queue 32 -result-cache 1024 -plan-cache 256 -sub-cache 512
//
// The storage layer (see DESIGN.md, "Storage layer") adds live ingestion
// and binary cold starts:
//
//	POST /v1/ingest   NDJSON triples {"s":..,"p":..,"o":..}; the batch
//	                  commits as one delta against the served graph and
//	                  swaps the engine generation (both caches invalidate
//	                  exactly once)
//
//	semkgd -snapshot g.snap -model m.bin            # binary cold start
//	semkgd -graph g.tsv -save-snapshot g.snap ...   # convert on boot
//
// -graph accepts either format (the snapshot magic is sniffed);
// -snapshot insists on the binary format. -save-snapshot writes the
// loaded graph back out as a snapshot, so the next start skips the TSV
// parse and index build entirely.
//
// Replication (see DESIGN.md, "Replication and failure model") makes
// every semkgd a streaming primary and lets it run as a follower:
//
//	GET  /v1/replicate  NDJSON state stream: snapshot bootstrap, then
//	                    one delta batch per commit (control frames +
//	                    ingest-format triples); ?from=G&epoch=E resumes
//	POST /v1/promote    flip a follower into a writable primary with a
//	                    fresh epoch (409 when already primary)
//
//	semkgd -model m.bin -follow http://primary:8375   # read-only follower
//	semkgd ... -advertise http://me:8375              # URL told to followers
//	semkgd ... -save-snapshot live.snap -snapshot-interval 30s
//
// A follower may omit -graph/-snapshot and bootstrap from the primary's
// stream; it rejects /v1/ingest with 403 and reports role, sync state
// and lag in /healthz and under the "semkgd_replica" expvar key. The
// background compactor rewrites -save-snapshot atomically (temp +
// rename) whenever the graph changed. On SIGTERM/SIGINT the server
// stops replication and drains in-flight requests up to -drain-timeout.
//
// Distributed sharding (see DESIGN.md, "Distributed sharding") splits
// the scatter-gather pipeline across processes:
//
//	semkgd -graph g.tsv -shards 4 -save-shards dir/        # write shard files, exit
//	semkgd -serve-shard dir/shard-0-of-4.shard -addr :9001  # shard server
//	semkgd -graph g.tsv -model m.bin \
//	       -shard-hosts 'http://a:9001|http://b:9001,http://c:9002'  # coordinator
//
// A shard server loads shard snapshot files and answers per-sub-query
// searches on POST /v1/shard/search (no model needed — semantics stay on
// the coordinator). The coordinator compiles globally, scatters over the
// listed hosts (comma-separated shards, '|'-separated replicas of one
// shard), hedges slow replicas after -hedge-after, retries failures with
// capped jittered backoff, and serves the ordinary search API; a shard
// with no live replica fails the search with 502 rather than a silent
// partial top-k. The coordinator is read-only (ingest would stale the
// remote shard snapshots).
//
// The streaming endpoint is the wire form of the paper's anytime
// behaviour (Section VI, Theorem 4): in time-bounded mode clients render
// provisional answers while the search refines them. See DESIGN.md,
// "Wire protocol".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/serve"
	"semkg/internal/shard"
)

func main() {
	graphFile := flag.String("graph", "", "graph file, TSV triples or binary snapshot (this or -snapshot is required)")
	snapshotFile := flag.String("snapshot", "", "binary graph snapshot file (this or -graph is required)")
	saveSnapshot := flag.String("save-snapshot", "", "write the loaded graph as a binary snapshot to this path and continue serving")
	modelFile := flag.String("model", "", "embedding model file (required)")
	addr := flag.String("addr", ":8375", "listen address")
	workers := flag.Int("workers", 0, "max concurrent pipeline executions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued requests (0 = 4x workers, -1 = none: shed when busy)")
	resultCache := flag.Int("result-cache", 0, "result cache entries (0 = 1024×workers, -1 = disabled)")
	planCache := flag.Int("plan-cache", 0, "plan cache entries (0 = 256×workers, -1 = disabled)")
	subCache := flag.Int("sub-cache", 0, "shared sub-search cache entries for cross-query sharing (0 = 512×workers, -1 = disabled)")
	maxIngest := flag.Int64("max-ingest-bytes", defaultMaxIngestBytes, "max /v1/ingest request body size in bytes (0 = unlimited)")
	shards := flag.Int("shards", 0, "partition the graph into N shards and serve scatter-gather searches (0/1 = single engine)")
	shardHalo := flag.Int("shard-halo", 0, "shard replication radius in hops; bounds servable max_hops (0 = default 4)")
	saveShards := flag.String("save-shards", "", "partition the loaded graph into -shards pieces, write one shard snapshot per shard into this directory, and exit")
	serveShard := flag.String("serve-shard", "", "run as a shard server: load these comma-separated shard snapshot files and answer /v1/shard/search (no -model needed)")
	shardHosts := flag.String("shard-hosts", "", "run as a distributed coordinator over these shard servers: comma-separated shards, '|'-separated replica URLs per shard")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinator: duplicate a slow shard request onto the next replica after this delay (0 = adaptive 2x latency EWMA, negative = never)")
	shardRetries := flag.Int("shard-retries", 0, "coordinator: extra attempts per shard stream after the first fails (0 = default 3, negative = none)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once listening (for -addr :0)")
	follow := flag.String("follow", "", "run as a read-only follower of the primary at this base URL (e.g. http://host:8375)")
	advertise := flag.String("advertise", "", "externally reachable base URL announced to followers in the replication hello")
	replicaLog := flag.Int("replica-log", 0, "max statements in the primary's replication log before compaction (0 = 65536)")
	snapshotEvery := flag.Duration("snapshot-interval", 0, "rewrite -save-snapshot in the background at this interval when the graph changed (0 = only at boot)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on SIGTERM/SIGINT")
	flag.Parse()

	if *serveShard != "" {
		// Shard-server mode: no graph, no model — the shard files are the
		// whole world, and semantics stay on the coordinator.
		for _, f := range []struct {
			set  bool
			name string
		}{
			{*graphFile != "", "-graph"}, {*snapshotFile != "", "-snapshot"},
			{*modelFile != "", "-model"}, {*shardHosts != "", "-shard-hosts"},
			{*shards != 0, "-shards"}, {*follow != "", "-follow"},
		} {
			if f.set {
				fmt.Fprintf(os.Stderr, "semkgd: -serve-shard conflicts with %s\n", f.name)
				os.Exit(2)
			}
		}
		if err := runShardServer(strings.Split(*serveShard, ","), *addr, *addrFile, *drainTimeout); err != nil {
			log.Fatalf("semkgd: %v", err)
		}
		return
	}
	if *shardHosts != "" && (*shards != 0 || *follow != "") {
		fmt.Fprintln(os.Stderr, "semkgd: -shard-hosts (distributed coordinator) conflicts with -shards and -follow")
		os.Exit(2)
	}
	if *saveShards != "" {
		if *graphFile == "" && *snapshotFile == "" {
			fmt.Fprintln(os.Stderr, "semkgd: -save-shards requires -graph or -snapshot")
			os.Exit(2)
		}
		if *shards < 2 {
			fmt.Fprintln(os.Stderr, "semkgd: -save-shards requires -shards >= 2")
			os.Exit(2)
		}
	} else if *modelFile == "" {
		fmt.Fprintln(os.Stderr, "semkgd: -model is required")
		os.Exit(2)
	}
	if *follow == "" && *saveShards == "" && (*graphFile == "") == (*snapshotFile == "") {
		fmt.Fprintln(os.Stderr, "semkgd: exactly one of -graph / -snapshot is required (a -follow node may omit both and bootstrap from the primary)")
		os.Exit(2)
	}
	if *graphFile != "" && *snapshotFile != "" {
		fmt.Fprintln(os.Stderr, "semkgd: at most one of -graph / -snapshot")
		os.Exit(2)
	}

	start := time.Now()
	var g *kg.Graph
	var err error
	switch {
	case *snapshotFile != "":
		g, err = loadGraph(*snapshotFile, kg.ReadSnapshot)
	case *graphFile != "":
		g, err = loadGraph(*graphFile, kg.ReadGraph)
	default:
		// Follower with no local graph: bootstrap empty and let the
		// primary's snapshot stream fill it in.
		g = kg.Empty()
	}
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	if *saveSnapshot != "" {
		if err := kg.WriteSnapshotFile(*saveSnapshot, g); err != nil {
			log.Fatalf("semkgd: %v", err)
		}
		log.Printf("semkgd: wrote snapshot %s", *saveSnapshot)
	}
	if *saveShards != "" {
		if err := writeShardFiles(g, *saveShards, *shards, *shardHalo); err != nil {
			log.Fatalf("semkgd: %v", err)
		}
		return
	}
	model, err := loadModel(*modelFile)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	shardCfg := core.ShardConfig{Shards: *shards, Halo: *shardHalo}
	buildEngine := func(g2 *kg.Graph, rebuild bool) (core.Queryer, error) {
		if *follow != "" && g2.NumPredicates() < len(model.Relations) {
			// Follower bootstrap window: the graph is a replayed prefix
			// of the primary's, whose predicate intern order is the
			// model's training order, so the positional prefix of the
			// trained relations labels it correctly. (A primary with a
			// too-small graph is still a pairing error — SpaceFor
			// rejects it below.)
			sp, err := embed.NewSpace(g2.Predicates(), model.Relations[:g2.NumPredicates()])
			if err != nil {
				return nil, err
			}
			return core.NewEngine(g2, sp, nil)
		}
		if *shardHosts != "" {
			if rebuild {
				return nil, fmt.Errorf("distributed coordinator is read-only: the remote shard snapshots cannot follow an ingest; rebuild shard files and restart")
			}
			base, err := core.BuildEngine(g2, model, nil)
			if err != nil {
				return nil, err
			}
			return core.NewDistEngine(base, parseShardHosts(*shardHosts), core.DistConfig{
				HedgeAfter: *hedgeAfter,
				Retries:    *shardRetries,
			})
		}
		if *shards > 1 {
			if !rebuild {
				return core.BuildShardedEngine(g2, model, nil, shardCfg)
			}
			// Ingest commit: a synchronous re-partition here would make
			// commit latency scale with the whole graph (one BFS plus one
			// index build per shard) instead of the delta. Serve the
			// committed graph through a plain engine immediately and let
			// the partition rebuild in the background; correctness is
			// unaffected — only the scatter-gather speedup lags.
			base, err := core.BuildEngine(g2, model, nil)
			if err != nil {
				return nil, err
			}
			// Rebuilds replace the engine wholesale; keep the expvar
			// counters monotonic across generations.
			var prev *core.ShardedEngine
			if cur := currentServe.Load(); cur != nil {
				switch e := cur.Engine().(type) {
				case *core.ShardedEngine:
					prev = e
				case *core.ReshardingEngine:
					prev = e.Sharded()
				}
			}
			log.Printf("semkgd: re-partitioning %d shards in the background; serving unsharded until ready", shardCfg.Shards)
			return core.NewResharding(base, prev, core.ReshardConfig{
				Shard: shardCfg,
				OnReady: func(se *core.ShardedEngine) {
					st := se.Stats()
					log.Printf("semkgd: background re-partition ready: %d shards, halo %d", st.Shards, st.Halo)
				},
				OnError: func(err error) {
					log.Printf("semkgd: background re-partition failed: %v; still serving unsharded", err)
				},
			}), nil
		}
		return core.BuildEngine(g2, model, nil)
	}
	eng, err := buildEngine(g, false)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	if sharded, ok := eng.(*core.ShardedEngine); ok {
		publishShardStats()
		st := sharded.Stats()
		log.Printf("semkgd: sharded scatter-gather: %d shards, halo %d, replication factor %.2f",
			st.Shards, st.Halo, st.ReplicationFactor)
	}
	if de, ok := eng.(*core.DistEngine); ok {
		publishDistStats()
		st := de.Stats()
		log.Printf("semkgd: distributed coordinator: %d shards, halo %d, replicas %v (read-only)",
			st.Shards, st.Halo, st.Replicas)
	}
	srv := serve.New(eng, serve.Config{
		ResultCache: *resultCache,
		PlanCache:   *planCache,
		SubCache:    *subCache,
		Workers:     *workers,
		Queue:       *queue,
		// Live ingestion rebuilds the engine over the committed graph;
		// SpaceFor pads vectors for predicates the model never saw. When
		// serving sharded, ingested entities are searchable immediately
		// through the interim unsharded engine while the partition
		// rebuilds in the background.
		Build: func(g2 *kg.Graph) (core.Queryer, error) { return buildEngine(g2, true) },
	})
	var repl *replState
	if *follow != "" {
		repl = newFollowerState(srv, *follow, *advertise, *replicaLog)
		log.Printf("semkgd: following %s (read-only until promoted)", *follow)
	} else {
		repl = newPrimaryState(srv, *advertise, *replicaLog)
		log.Printf("semkgd: replication primary, epoch %s", repl.currentPrimary().Epoch())
	}

	if *saveSnapshot != "" && *snapshotEvery > 0 {
		compactorCtx, stopCompactor := context.WithCancel(context.Background())
		defer stopCompactor()
		go runCompactor(compactorCtx, srv, *saveSnapshot, *snapshotEvery, log.Printf)
	}

	ln, err := listenAndAnnounce(*addr, *addrFile)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	log.Printf("semkgd: %d nodes, %d edges, %d predicates loaded in %s; listening on %s",
		g.NumNodes(), g.NumEdges(), g.NumPredicates(), time.Since(start).Round(time.Millisecond), ln.Addr())

	httpSrv := &http.Server{Handler: newMuxReplicated(srv, *maxIngest, repl)}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := drainOnSignal(httpSrv, repl, *drainTimeout, sig)
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("semkgd: %v", err)
	}
	if err := <-drained; err != nil {
		log.Fatalf("semkgd: drain: %v", err)
	}
	log.Printf("semkgd: drained and stopped")
}

// drainOnSignal arms graceful shutdown: when trigger delivers, the
// replication role is closed (follower tail stops, primary streams
// wake and end) and the HTTP server drains in-flight requests up to
// timeout before closing. The returned channel carries Shutdown's
// error; ListenAndServe returns http.ErrServerClosed the moment the
// drain starts.
func drainOnSignal(httpSrv *http.Server, repl *replState, timeout time.Duration, trigger <-chan os.Signal) <-chan error {
	done := make(chan error, 1)
	go func() {
		<-trigger
		log.Printf("semkgd: draining in-flight requests (timeout %s)", timeout)
		if repl != nil {
			repl.close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()
	return done
}

// listenAndAnnounce binds addr and, when addrFile is set, writes the
// bound address (useful with -addr 127.0.0.1:0) so scripts and tests can
// discover the port.
func listenAndAnnounce(addr, addrFile string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return nil, fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	return ln, nil
}

// parseShardHosts splits "-shard-hosts 'a|b,c'" into per-shard replica
// URL lists: ',' separates shards, '|' separates replicas of one shard.
func parseShardHosts(s string) [][]string {
	var hosts [][]string
	for _, shardPart := range strings.Split(s, ",") {
		var reps []string
		for _, h := range strings.Split(shardPart, "|") {
			if h = strings.TrimSpace(h); h != "" {
				reps = append(reps, h)
			}
		}
		hosts = append(hosts, reps)
	}
	return hosts
}

// writeShardFiles partitions g and writes one shard snapshot per shard
// as dir/shard-<i>-of-<n>.shard (the files -serve-shard loads).
func writeShardFiles(g *kg.Graph, dir string, shards, halo int) error {
	set, err := shard.Partition(g, shard.Options{Shards: shards, Halo: halo})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < set.Len(); i++ {
		path := filepath.Join(dir, shardFileName(i, set.Len()))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := shard.WriteShard(f, set.Shard(i)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("semkgd: wrote %s (%d nodes, %d owned)", path, set.Shard(i).Graph.NumNodes(), set.Shard(i).OwnedCount())
	}
	return nil
}

// shardFileName is the canonical shard snapshot file name.
func shardFileName(i, n int) string { return fmt.Sprintf("shard-%d-of-%d.shard", i, n) }

func loadGraph(path string, read func(io.Reader) (*kg.Graph, error)) (*kg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return read(f)
}

func loadModel(path string) (*embed.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return embed.ReadModel(f)
}
