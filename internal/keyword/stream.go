package keyword

import (
	"context"
	"sync"
	"time"

	"semkg/internal/core"
	"semkg/internal/serve"
)

// Event is one keyword-stream event. Exactly one of the payload fields is
// set: Assembly opens the stream, Inner forwards an engine event from the
// candidate identified by Candidate, and Final closes the stream with the
// blended response.
type Event struct {
	// Candidate attributes an Inner event to Assembly.Candidates[Candidate];
	// -1 marks front-end-level events (Assembly, Final).
	Candidate int
	// Inner is a forwarded engine event (progress, provisional top-k,
	// terminal result) from one candidate's serving stream.
	Inner core.Event
	// Assembly is the assembly outcome (first event). Executed
	// accompanies it: how many of the candidates will run.
	Assembly *Assembly
	// Executed is how many candidates execute (assembly event only).
	Executed int
	// Final is the blended response (last event).
	Final *Response
}

// Stream is the streaming variant of Search: candidates execute
// concurrently through the serving layer's Stream path and their events
// interleave on the returned channel, each tagged with its candidate
// index, between an opening assembly event and a terminal blended
// response. Validation and whole-request failures (every candidate
// rejected synchronously) are returned synchronously; the channel closes
// after the final event. Streamed responses are not cached.
func (f *Frontend) Stream(ctx context.Context, input string, opts core.Options, maxCandidates int) (<-chan Event, error) {
	b, err := f.prepare(input, opts, maxCandidates)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	eng, gen := f.srv.Current()
	asm := Assemble(eng.Graph(), input, f.cfg)
	f.assemblies.Add(1)
	execs := asm.Candidates
	if len(execs) > b {
		execs = execs[:b]
	}

	type opened struct {
		idx int
		st  *serve.Stream
	}
	var streams []opened
	errs := make([]error, len(execs))
	runs := make([]CandidateRun, len(execs))
	for i := range execs {
		runs[i] = CandidateRun{Index: i}
		st, err := f.srv.Stream(ctx, execs[i].Query, opts)
		f.candidateRuns.Add(1)
		if err != nil {
			errs[i] = err
			runs[i].Err = err.Error()
			continue
		}
		streams = append(streams, opened{idx: i, st: st})
	}
	if len(execs) > 0 && len(streams) == 0 {
		return nil, worstError(errs)
	}

	out := make(chan Event, 64)
	go func() {
		defer close(out)
		out <- Event{Candidate: -1, Assembly: asm, Executed: len(execs)}
		results := make([]*core.Result, len(execs))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, op := range streams {
			wg.Add(1)
			go func(op opened) {
				defer wg.Done()
				t0 := time.Now()
				for ev := range op.st.Events() {
					out <- Event{Candidate: op.idx, Inner: ev}
				}
				res, err := op.st.Result()
				mu.Lock()
				runs[op.idx].Elapsed = time.Since(t0)
				if err != nil {
					errs[op.idx] = err
					runs[op.idx].Err = err.Error()
				} else {
					results[op.idx] = res
					runs[op.idx].Answers = len(res.Answers)
					runs[op.idx].Approximate = res.Approximate
				}
				mu.Unlock()
			}(op)
		}
		wg.Wait()
		out <- Event{Candidate: -1, Final: &Response{
			Assembly:   asm,
			Executed:   len(execs),
			Runs:       runs,
			Answers:    blend(execs, results, opts.Normalized().K),
			Generation: gen,
			Elapsed:    time.Since(start),
		}}
	}()
	return out, nil
}
