// Fuzz coverage for the keyword-search wire vocabulary, mirroring
// fuzz_test.go: the strict decoders must never panic, and every accepted
// document must survive an encode→decode round trip unchanged.

package api

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func FuzzDecodeKeywordRequest(f *testing.F) {
	seeds := []string{
		`{"keywords":"automobile assembly germany"}`,
		`{"keywords":"design engine italy","options":{"k":5,"tau":0.75},"max_candidates":3}`,
		`{"keywords":"bmw","options":{"time_bound":"50ms","alert_ratio":0.8}}`,
		`{"keywords":""}`,
		`{"keywords":"x","max_candidates":-1}`, // invalid values still decode; Validate rejects later
		`{"keywords":"x","bogus":1}`,           // unknown field: must error, not panic
		`{"keywords":"x"} trailing`,
		`{}`, `[]`, `{`, `null`, `"str"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeKeywordRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request failed to encode: %v", err)
		}
		req2, err := DecodeKeywordRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("round trip changed the request:\n%+v\nvs\n%+v", req, req2)
		}
	})
}

func FuzzDecodeKeywordResult(f *testing.F) {
	seeds := []string{
		`{"keywords":["automobile","assembly","germany"],"candidates":[],"executed":0,
		  "answers":[],"assembly_elapsed":"12µs","elapsed":"3ms","generation":0}`,
		`{"keywords":["ger"],"unmatched":["zzz"],
		  "candidates":[{"query":{"nodes":[{"id":"t0","type":"Automobile"},{"id":"e1","name":"Germany"}],
		  "edges":[{"from":"t0","to":"e1","predicate":"assembly"}]},"score":0.41,"coverage":1,"explain":"focus ?Automobile"}],
		  "executed":1,"runs":[{"candidate":0,"answers":2,"elapsed":"1ms"}],
		  "answers":[{"entity":"BMW 320","score":0.9,"blended":0.37,"candidate":0}],
		  "assembly_elapsed":"9µs","elapsed":"1ms","generation":3}`,
		`{"keywords":[],"candidates":[],"executed":0,"answers":[],"assembly_elapsed":0,"elapsed":0,"generation":0}`,
		`{"keywords":[],"bogus":1}`,
		`{}`, `[]`, `{`, `null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeKeywordResult(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("accepted result failed to encode: %v", err)
		}
		res2, err := DecodeKeywordResult(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(res, res2) {
			t.Fatalf("round trip changed the result:\n%+v\nvs\n%+v", res, res2)
		}
	})
}

func FuzzKeywordEventRoundTrip(f *testing.F) {
	seeds := []string{
		`{"event":"assembly","keywords":["automobile","germany"],"executed":2,
		  "candidates":[{"query":{"nodes":[{"id":"t0","type":"Automobile"}],"edges":[]},"score":0.5,"coverage":1}]}`,
		`{"event":"engine","candidate":0,"inner":{"event":"progress","sub":0,"collected":3}}`,
		`{"event":"engine","candidate":1,"inner":{"event":"topk","round":1,"answers":[{"entity":"X","score":1}]}}`,
		`{"event":"result","result":{"keywords":["ger"],"candidates":[],"executed":0,"answers":[],
		  "assembly_elapsed":"1µs","elapsed":"2µs","generation":0}}`,
		`{"event":""}`,
		`{"event":"unknown-kind"}`,
		`{}`, `[]`, `{`, `null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeKeywordEvent(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("accepted event failed to encode: %v", err)
		}
		ev2, err := DecodeKeywordEvent(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("round trip changed the event:\n%+v\nvs\n%+v", ev, ev2)
		}
	})
}

func FuzzDecodeSuggestResult(f *testing.F) {
	seeds := []string{
		`{"query":"ger","suggestions":[{"text":"Germany","kind":"entity","via":"prefix","count":1,"score":0.36}],
		  "generation":0,"elapsed":"2µs"}`,
		`{"query":"","suggestions":[],"generation":9,"elapsed":0}`,
		`{"query":"x","suggestions":[{"text":"assembly","kind":"predicate","via":"exact","count":4,"score":1}],
		  "generation":1,"elapsed":"1µs"}`,
		`{"query":"x","bogus":1}`,
		`{}`, `[]`, `{`, `null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeSuggestResult(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("accepted result failed to encode: %v", err)
		}
		res2, err := DecodeSuggestResult(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(res, res2) {
			t.Fatalf("round trip changed the result:\n%+v\nvs\n%+v", res, res2)
		}
	})
}
