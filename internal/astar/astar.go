// Package astar implements the paper's A* semantic search (Section V,
// Algorithm 1): best-first top-k path search over the lazily materialized
// semantic graph, guided by the heuristic pss estimation
//
//	ψ̂(u_s..u_i) = (∏ w_j · m(u_i))^(1/n̂)        (Eq. 7)
//
// which upper-bounds the exact path semantic similarity
//
//	ψ(u_s..u_t) = (∏ w_j)^(1/n)                  (Eq. 6)
//
// of every match extending the partial path (Theorem 1), so matches pop off
// the frontier in exact non-increasing pss order (Theorem 2).
//
// Generalization to multi-edge sub-queries: a sub-query graph may contain
// several query edges (segments). The search state tracks the segment being
// matched; reaching a node that matches the segment's end query node closes
// the segment (paths stop at the first such node, mirroring the paper's
// stop-at-target-match semantics). The m(u) bound is a suffix maximum over
// the remaining segments, which keeps the estimate admissible and
// consistent (see internal/semgraph and DESIGN.md).
package astar

import (
	"math"

	"semkg/internal/kg"
	"semkg/internal/pqueue"
)

// Weighter supplies semantic edge weights and the m(u) heuristic bound.
// *semgraph.Weighter implements it.
type Weighter interface {
	// Weight returns the semantic weight in (0,1] of graph predicate p for
	// the seg-th query edge of the sub-query.
	Weight(p kg.PredID, seg int) float64
	// NodeMax returns an upper bound on any single edge weight reachable
	// from u while matching query edges seg or later.
	NodeMax(u kg.NodeID, seg int) float64
}

// SubQuery is the compiled form of a sub-query path graph: the node-match
// sets φ(v) of its query nodes, resolved by the transformation library.
type SubQuery struct {
	// Anchors is φ(v_s) of the starting specific node.
	Anchors []kg.NodeID
	// EndSets[i] is φ(q_{i+1}) for the query node terminating the i-th
	// query edge; EndSets[len-1] is φ(v_t) of the sub-query's end node.
	EndSets []map[kg.NodeID]bool
}

// Segments returns the number of query edges.
func (s SubQuery) Segments() int { return len(s.EndSets) }

// Options configures a search.
type Options struct {
	// Tau is the pss threshold τ (Definition 7); partial paths whose
	// estimate falls below it are pruned (Lemma 3). Default 0.8.
	Tau float64
	// MaxHops is the user-desired path length n̂: matches longer than
	// MaxHops knowledge-graph edges are ignored (Section V-A). Default 4.
	MaxHops int
	// NoHeuristic disables the m(u) factor of the estimate (treats it
	// as 1). The search remains correct but prunes far less — this is the
	// uninformed best-first ablation of the benchmarks.
	NoHeuristic bool
	// PruneVisited enables the paper's visited-set pruning (Algorithm 1,
	// line 6): each (node, segment, hops) state expands at most once.
	// This shrinks the search space considerably but — like the paper's
	// implementation — may miss alternate simple paths that share a state
	// with an earlier, better-weighted path, so per-entity pss can come
	// out below the true optimum. The default (false) enumerates exactly
	// and keeps Theorem 2's global-optimality guarantee unconditional;
	// the hop bound n̂ and τ-pruning keep the space tractable.
	PruneVisited bool
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 0.8
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 4
	}
	return o
}

// Match is a sub-query graph match: a path in the knowledge graph together
// with its exact path semantic similarity.
type Match struct {
	// Nodes is the node sequence of the path; Nodes[0] matches the
	// sub-query's anchor and Nodes[len-1] its end (pivot) node.
	Nodes []kg.NodeID
	// Edges are the knowledge-graph edges between consecutive nodes.
	Edges []kg.EdgeID
	// SegEnds[i] is the index into Nodes where the i-th query edge's
	// match ends (the anchor of query node i+1).
	SegEnds []int
	// PSS is the exact path semantic similarity ψ (Eq. 6).
	PSS float64
}

// End returns the node matching the sub-query's end (pivot) query node.
func (m Match) End() kg.NodeID { return m.Nodes[len(m.Nodes)-1] }

// Len returns the number of knowledge-graph edges in the match.
func (m Match) Len() int { return len(m.Edges) }

// state is a frontier entry: a partial path positioned at node, currently
// matching query edge seg, having consumed hops graph edges with weight
// product w. Complete states (seg == Segments) carry their exact pss as
// the frontier priority.
type state struct {
	node   kg.NodeID
	seg    int32
	hops   int32
	w      float64
	parent *state
	via    kg.EdgeID // edge consumed to arrive; -1 for anchors
}

type stateKey struct {
	node kg.NodeID
	seg  int32
	hops int32
}

// Stats counts search work, for the pruning-effectiveness experiments.
type Stats struct {
	Popped  int // states expanded
	Pushed  int // states entering the frontier
	Pruned  int // expansions dropped by the τ threshold
	Emitted int // matches produced
}

// Searcher runs Algorithm 1 incrementally: each Next call continues the
// search and returns the next-best match by exact pss. The paper's remark
// that "we usually need more than k matches collected for each g_i"
// (Section V-B) is served by simply calling Next again — the threshold
// assembly pulls matches on demand.
//
// A Searcher is not safe for concurrent use.
type Searcher struct {
	g    *kg.Graph
	w    Weighter
	sub  SubQuery
	opts Options

	frontier pqueue.Max[*state]
	closed   map[stateKey]struct{}
	emitted  map[kg.NodeID]bool // end-node dedup: one match per answer entity
	invRoot  float64            // 1/n̂
	stats    Stats
}

// NewSearcher prepares a search for one sub-query graph. The sub-query must
// have at least one segment; anchors or end sets may be empty, in which
// case the search simply yields no matches.
func NewSearcher(g *kg.Graph, w Weighter, sub SubQuery, opts Options) *Searcher {
	opts = opts.withDefaults()
	s := &Searcher{
		g:       g,
		w:       w,
		sub:     sub,
		opts:    opts,
		closed:  make(map[stateKey]struct{}),
		emitted: make(map[kg.NodeID]bool),
		invRoot: 1 / float64(opts.MaxHops),
	}
	for _, u := range sub.Anchors {
		st := &state{node: u, seg: 0, hops: 0, w: 1, via: -1}
		s.push(st, s.estimate(st))
	}
	return s
}

// Stats returns search-effort counters accumulated so far.
func (s *Searcher) Stats() Stats { return s.stats }

// estimate computes ψ̂ for a partial state (Eq. 7).
func (s *Searcher) estimate(st *state) float64 {
	m := 1.0
	if !s.opts.NoHeuristic {
		m = s.w.NodeMax(st.node, int(st.seg))
	}
	return math.Pow(st.w*m, s.invRoot)
}

func (s *Searcher) push(st *state, priority float64) {
	s.frontier.Push(st, priority)
	s.stats.Pushed++
}

// Next returns the match with the greatest pss not yet returned, in exact
// non-increasing pss order. ok is false when the search space is exhausted.
func (s *Searcher) Next() (Match, bool) {
	for {
		st, pri, ok := s.frontier.Pop()
		if !ok {
			return Match{}, false
		}
		if st.seg == int32(s.sub.Segments()) {
			// Complete match popped in global pss order (Theorem 2).
			if s.emitted[st.node] {
				continue
			}
			s.emitted[st.node] = true
			s.stats.Emitted++
			return s.reconstruct(st, pri), true
		}
		if s.opts.PruneVisited {
			key := stateKey{st.node, st.seg, st.hops}
			if _, dup := s.closed[key]; dup {
				continue
			}
			s.closed[key] = struct{}{}
		}
		s.stats.Popped++
		s.expand(st, nil)
	}
}

// RunEager drives the search in the time-bounded mode of Algorithm 2:
// matches are emitted the moment they are discovered during expansion
// (non-optimal order), and the search continues until emit returns false,
// stop returns true, or the space is exhausted. It returns true when the
// space was exhausted (the eager result set is then complete and exact).
func (s *Searcher) RunEager(stop func() bool, emit func(Match) bool) bool {
	for {
		if stop != nil && stop() {
			return false
		}
		st, _, ok := s.frontier.Pop()
		if !ok {
			return true
		}
		if st.seg == int32(s.sub.Segments()) {
			continue // already emitted at discovery time
		}
		if s.opts.PruneVisited {
			key := stateKey{st.node, st.seg, st.hops}
			if _, dup := s.closed[key]; dup {
				continue
			}
			s.closed[key] = struct{}{}
		}
		s.stats.Popped++
		keepGoing := true
		s.expand(st, func(m Match) {
			if keepGoing && !emit(m) {
				keepGoing = false
			}
		})
		if !keepGoing {
			return false
		}
	}
}

// expand generates the successor states of st. Completed matches are pushed
// to the frontier with their exact pss in optimal mode (emitEager == nil),
// or handed to emitEager immediately in time-bounded mode.
func (s *Searcher) expand(st *state, emitEager func(Match)) {
	segs := int32(s.sub.Segments())
	// Hop budget: after consuming one edge, each remaining segment still
	// needs at least one edge (hops+1 + (segs-seg-1) <= MaxHops).
	if int(st.hops)+int(segs-st.seg) > s.opts.MaxHops {
		return
	}
	endSet := s.sub.EndSets[st.seg]
	for _, h := range s.g.Neighbors(st.node) {
		if onPath(st, h.Neighbor) {
			continue // matches are simple paths (path graphs, Definition 6)
		}
		w := s.w.Weight(h.Pred, int(st.seg))
		nw := st.w * w
		next := &state{
			node:   h.Neighbor,
			seg:    st.seg,
			hops:   st.hops + 1,
			w:      nw,
			parent: st,
			via:    h.Edge,
		}
		if endSet[h.Neighbor] {
			// Segment closed on arrival (paths stop at the first node
			// matching the segment's end query node).
			next.seg++
			if next.seg == segs {
				// Complete match: exact pss, n = actual path length.
				pss := math.Pow(nw, 1/float64(next.hops))
				if pss < s.opts.Tau {
					s.stats.Pruned++
					continue
				}
				if emitEager != nil {
					// Algorithm 2 collects every explored match in M̂_i;
					// consumers keep the best per answer entity.
					s.stats.Emitted++
					emitEager(s.reconstruct(next, pss))
				} else {
					s.push(next, pss)
				}
				continue
			}
		}
		est := s.estimate(next)
		if est < s.opts.Tau {
			s.stats.Pruned++
			continue
		}
		s.push(next, est)
	}
}

// onPath reports whether node u already lies on the partial path of st.
// Paths are at most MaxHops long, so the chain walk is O(n̂).
func onPath(st *state, u kg.NodeID) bool {
	for cur := st; cur != nil; cur = cur.parent {
		if cur.node == u {
			return true
		}
	}
	return false
}

// reconstruct walks the parent chain to materialize the match path.
func (s *Searcher) reconstruct(st *state, pss float64) Match {
	var revNodes []kg.NodeID
	var revEdges []kg.EdgeID
	var revSegs []int32
	for cur := st; cur != nil; cur = cur.parent {
		revNodes = append(revNodes, cur.node)
		if cur.via >= 0 {
			revEdges = append(revEdges, cur.via)
		}
		revSegs = append(revSegs, cur.seg)
	}
	n := len(revNodes)
	m := Match{
		Nodes: make([]kg.NodeID, n),
		Edges: make([]kg.EdgeID, len(revEdges)),
		PSS:   pss,
	}
	for i := range revNodes {
		m.Nodes[n-1-i] = revNodes[i]
	}
	for i := range revEdges {
		m.Edges[len(revEdges)-1-i] = revEdges[i]
	}
	// Segment end positions: index where seg increments.
	segs := s.sub.Segments()
	m.SegEnds = make([]int, segs)
	prevSeg := int32(0)
	for i := n - 1; i >= 0; i-- { // walk forward in path order
		cur := revSegs[i]
		for sgi := prevSeg; sgi < cur; sgi++ {
			m.SegEnds[sgi] = n - 1 - i
		}
		prevSeg = cur
	}
	return m
}
