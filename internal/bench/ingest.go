// Ingest experiment: the storage layer's production metrics. Three
// measurements: cold-start load time of the binary snapshot codec against
// the TSV parse + index build it replaces (the ≥10x acceptance bar),
// delta-commit latency as a function of delta size, and end-to-end search
// throughput while a background applier publishes commits through
// serve.Apply (generation swaps racing live queries). Run via `go run
// ./cmd/kgbench -exp ingest` (writes BENCH_ingest.json).
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/core"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

// LoadComparison is the snapshot-vs-TSV cold-start measurement.
type LoadComparison struct {
	TSVBytes      int64   `json:"tsv_bytes"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	TSVLoadUs     float64 `json:"tsv_load_us"`
	SnapshotUs    float64 `json:"snapshot_load_us"`
	Speedup       float64 `json:"speedup"`
	Iters         int     `json:"iters"`
}

// CommitPoint is one delta-size latency measurement.
type CommitPoint struct {
	DeltaEdges int     `json:"delta_edges"`
	NewNodes   int     `json:"new_nodes"`
	CommitUs   float64 `json:"commit_us"`
	PerEdgeUs  float64 `json:"per_edge_us"`
}

// LiveIngest is the search-while-ingest workload measurement.
type LiveIngest struct {
	Clients      int     `json:"clients"`
	DurationMs   float64 `json:"duration_ms"`
	Requests     int     `json:"requests"`
	QPS          float64 `json:"qps"`
	Commits      int     `json:"commits"`
	Generation   uint64  `json:"generation"`
	ResultHits   uint64  `json:"result_hits"`
	PipelineRuns uint64  `json:"pipeline_runs"`
}

// IngestResult is the experiment artifact (BENCH_ingest.json).
type IngestResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	Load    LoadComparison `json:"load"`
	Commits []CommitPoint  `json:"commits"`
	Live    LiveIngest     `json:"live"`
}

// RunIngest measures the storage layer on this environment. short trims
// iteration counts for CI smoke runs.
func RunIngest(env *Env, short bool) (*IngestResult, error) {
	res := &IngestResult{
		Dataset: env.Cfg.Profile.Name,
		Scale:   fmt.Sprintf("%d nodes / %d edges", env.Dataset.Graph.NumNodes(), env.Dataset.Graph.NumEdges()),
		EnvInfo: CaptureEnv(),
	}
	load, err := measureLoad(env.Dataset.Graph, short)
	if err != nil {
		return nil, err
	}
	res.Load = load

	sizes := []int{10, 100, 1000}
	if short {
		sizes = []int{10, 100}
	}
	for _, size := range sizes {
		pt, err := measureCommit(env.Dataset.Graph, size, short)
		if err != nil {
			return nil, err
		}
		res.Commits = append(res.Commits, pt)
	}

	live, err := measureLive(env, short)
	if err != nil {
		return nil, err
	}
	res.Live = live
	return res, nil
}

// measureLoad compares a cold start from the TSV triple format (parse +
// Build + index derivation) against the binary snapshot codec, both from
// memory so disk speed does not pollute the comparison. The minimum over
// the iterations is reported — load time is a floor-bound metric — and
// a collection runs between iterations, outside the timed region, so an
// incidental GC cycle does not land in one side's timings (a real cold
// start runs long before the first collection).
func measureLoad(g *kg.Graph, short bool) (LoadComparison, error) {
	var tsv, snap bytes.Buffer
	if err := kg.WriteTriples(&tsv, g); err != nil {
		return LoadComparison{}, err
	}
	if err := kg.WriteSnapshot(&snap, g); err != nil {
		return LoadComparison{}, err
	}
	iters := 11
	if short {
		iters = 9 // the load pair is cheap; a stable minimum matters more
	}
	best := func(load func() error) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < iters; i++ {
			runtime.GC()
			start := time.Now()
			if err := load(); err != nil {
				return 0, err
			}
			if d := time.Since(start); min == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	tsvTime, err := best(func() error {
		_, err := kg.ReadTriples(bytes.NewReader(tsv.Bytes()))
		return err
	})
	if err != nil {
		return LoadComparison{}, err
	}
	snapTime, err := best(func() error {
		_, err := kg.ReadSnapshot(bytes.NewReader(snap.Bytes()))
		return err
	})
	if err != nil {
		return LoadComparison{}, err
	}
	out := LoadComparison{
		TSVBytes:      int64(tsv.Len()),
		SnapshotBytes: int64(snap.Len()),
		TSVLoadUs:     float64(tsvTime) / float64(time.Microsecond),
		SnapshotUs:    float64(snapTime) / float64(time.Microsecond),
		Iters:         iters,
	}
	if snapTime > 0 {
		out.Speedup = float64(tsvTime) / float64(snapTime)
	}
	return out, nil
}

// ingestDelta builds a synthetic delta against g: size edges, half
// linking existing nodes, half attaching brand-new typed nodes (reusing
// existing predicates so the trained space still covers the commit).
func ingestDelta(g *kg.Graph, size int, seed int64) (*kg.Delta, error) {
	rng := rand.New(rand.NewSource(seed))
	d := kg.NewDelta(g)
	preds := g.Predicates()
	n := g.NumNodes()
	for i := 0; i < size; i++ {
		pred := preds[rng.Intn(len(preds))]
		if i%2 == 0 {
			if _, err := d.AddEdge(kg.NodeID(rng.Intn(n)), kg.NodeID(rng.Intn(n)), pred); err != nil {
				return nil, err
			}
			continue
		}
		node, err := d.AddNode(fmt.Sprintf("ingested_%d_%d", seed, i), "IngestedThing")
		if err != nil {
			return nil, err
		}
		if _, err := d.AddEdge(node, kg.NodeID(rng.Intn(n)), pred); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// measureCommit times Delta.Commit for one delta size (averaged; a fresh
// delta is built per iteration since deltas are single-shot).
func measureCommit(g *kg.Graph, size int, short bool) (CommitPoint, error) {
	iters := 7
	if short {
		iters = 3
	}
	var total time.Duration
	var newNodes int
	for i := 0; i < iters; i++ {
		d, err := ingestDelta(g, size, int64(1000+i))
		if err != nil {
			return CommitPoint{}, err
		}
		newNodes = d.AddedNodes()
		start := time.Now()
		d.Commit()
		total += time.Since(start)
	}
	avg := float64(total) / float64(iters) / float64(time.Microsecond)
	return CommitPoint{
		DeltaEdges: size,
		NewNodes:   newNodes,
		CommitUs:   avg,
		PerEdgeUs:  avg / float64(size),
	}, nil
}

// measureLive runs concurrent search clients against a serving engine
// while an applier publishes delta commits: the QPS under generation
// churn, with every request completing against a consistent snapshot.
func measureLive(env *Env, short bool) (LiveIngest, error) {
	qs := serveQueries(env)
	if len(qs) == 0 {
		return LiveIngest{}, fmt.Errorf("bench: environment has no workload queries")
	}
	const clients = 4
	duration := 1500 * time.Millisecond
	if short {
		duration = 400 * time.Millisecond
	}
	opts := env.SearchOptions(10)
	// The applier reuses the trained space: ingestDelta only adds edges
	// over existing predicates, so the predicate set is stable.
	srv := serve.New(env.Engine, serve.Config{
		Queue: 4 * clients,
		Build: func(g *kg.Graph) (core.Queryer, error) {
			return core.NewEngine(g, env.Space, env.Dataset.Library)
		},
	})
	ctx := context.Background()
	deadline := time.Now().Add(duration)

	var requests atomic.Int64
	errs := make([]error, clients+1)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(77 + c)))
			for time.Now().Before(deadline) {
				if _, err := srv.Search(ctx, qs[rng.Intn(len(qs))], opts); err != nil {
					errs[c] = err
					return
				}
				requests.Add(1)
			}
		}(c)
	}
	commits := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seed := int64(1); time.Now().Before(deadline); seed++ {
			d, err := ingestDelta(srv.Engine().Graph(), 50, 5000+seed)
			if err != nil {
				errs[clients] = err
				return
			}
			if _, err := srv.Apply(d); err != nil {
				errs[clients] = err
				return
			}
			commits++
			time.Sleep(20 * time.Millisecond)
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return LiveIngest{}, err
		}
	}
	st := srv.Stats()
	return LiveIngest{
		Clients:      clients,
		DurationMs:   float64(duration) / float64(time.Millisecond),
		Requests:     int(requests.Load()),
		QPS:          float64(requests.Load()) / duration.Seconds(),
		Commits:      commits,
		Generation:   st.Generation,
		ResultHits:   st.ResultHits,
		PipelineRuns: st.PipelineRuns,
	}, nil
}

// WriteJSON stores the artifact.
func (r *IngestResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the measurements as a text table.
func (r *IngestResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Storage layer (%s, %s, %s/%s)", r.Dataset, r.Scale, r.GOOS, r.GOARCH),
		Header: []string{"measurement", "value", "detail"},
	}
	t.AddRow("tsv load", fmt.Sprintf("%.0f µs", r.Load.TSVLoadUs),
		fmt.Sprintf("%d bytes", r.Load.TSVBytes))
	t.AddRow("snapshot load", fmt.Sprintf("%.0f µs", r.Load.SnapshotUs),
		fmt.Sprintf("%d bytes", r.Load.SnapshotBytes))
	t.AddRow("load speedup", fmt.Sprintf("%.1fx", r.Load.Speedup), "snapshot vs tsv")
	for _, c := range r.Commits {
		t.AddRow(fmt.Sprintf("commit %d edges", c.DeltaEdges),
			fmt.Sprintf("%.0f µs", c.CommitUs),
			fmt.Sprintf("%.2f µs/edge, %d new nodes", c.PerEdgeUs, c.NewNodes))
	}
	t.AddRow("search-while-ingest", fmt.Sprintf("%.0f QPS", r.Live.QPS),
		fmt.Sprintf("%d reqs, %d commits, gen %d", r.Live.Requests, r.Live.Commits, r.Live.Generation))
	return t
}
