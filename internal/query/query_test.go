package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// chainQuery reproduces the paper's Figure 3(a): find automobiles (v1)
// produced in China (v2) with German (v4) engines (v3).
func chainQuery() *Graph {
	return &Graph{
		Nodes: []Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "China", Type: "Country"},
			{ID: "v3", Type: "Device"},
			{ID: "v4", Name: "Germany", Type: "Country"},
		},
		Edges: []Edge{
			{From: "v1", To: "v2", Predicate: "assembly"},
			{From: "v1", To: "v3", Predicate: "engine"},
			{From: "v3", To: "v4", Predicate: "manufacturer"},
		},
	}
}

// triangleQuery reproduces Figure 3(c).
func triangleQuery() *Graph {
	return &Graph{
		Nodes: []Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Type: "Person"},
			{ID: "v3", Name: "Germany", Type: "Country"},
		},
		Edges: []Edge{
			{From: "v1", To: "v3", Predicate: "assembly"},
			{From: "v2", To: "v3", Predicate: "nationality"},
			{From: "v2", To: "v1", Predicate: "designer"},
		},
	}
}

// complexQuery reproduces Figure 16(a): Spanish soccer players who played
// for clubs of England and Spain.
func complexQuery() *Graph {
	return &Graph{
		Nodes: []Node{
			{ID: "v1", Type: "SoccerClub"},
			{ID: "v2", Type: "Person"},
			{ID: "v3", Name: "Spain", Type: "Country"},
			{ID: "v4", Type: "SoccerClub"},
			{ID: "v5", Name: "England", Type: "Country"},
		},
		Edges: []Edge{
			{From: "v1", To: "v3", Predicate: "ground"},      // e1
			{From: "v2", To: "v3", Predicate: "nationality"}, // e2
			{From: "v2", To: "v1", Predicate: "team"},        // e3
			{From: "v2", To: "v4", Predicate: "team"},        // e4
			{From: "v4", To: "v5", Predicate: "ground"},      // e5
		},
	}
}

func TestValidateOK(t *testing.T) {
	for name, g := range map[string]*Graph{
		"chain": chainQuery(), "triangle": triangleQuery(), "complex": complexQuery(),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: Validate = %v", name, err)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	base := chainQuery()
	cases := map[string]func(*Graph){
		"no nodes":        func(g *Graph) { g.Nodes = nil },
		"no edges":        func(g *Graph) { g.Edges = nil },
		"dup id":          func(g *Graph) { g.Nodes[1].ID = "v1" },
		"empty id":        func(g *Graph) { g.Nodes[0].ID = "" },
		"no name or type": func(g *Graph) { g.Nodes[0].Type = "" },
		"bad edge ref":    func(g *Graph) { g.Edges[0].To = "nope" },
		"self loop":       func(g *Graph) { g.Edges[0].To = "v1" },
		"no predicate":    func(g *Graph) { g.Edges[0].Predicate = "" },
		"no specific": func(g *Graph) {
			for i := range g.Nodes {
				g.Nodes[i].Name = ""
			}
		},
		"no target": func(g *Graph) {
			for i := range g.Nodes {
				if g.Nodes[i].Name == "" {
					g.Nodes[i].Name = "x" + g.Nodes[i].ID
				}
			}
		},
		"disconnected": func(g *Graph) {
			g.Nodes = append(g.Nodes, Node{ID: "v9", Name: "Mars", Type: "Planet"},
				Node{ID: "v10", Type: "Rover"})
			g.Edges = append(g.Edges, Edge{From: "v9", To: "v10", Predicate: "landed"})
			g.Edges = g.Edges[1:] // detach part of the original graph too
		},
	}
	for name, mutate := range cases {
		g := *base
		g.Nodes = append([]Node(nil), base.Nodes...)
		g.Edges = append([]Edge(nil), base.Edges...)
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestTargetsAndSpecifics(t *testing.T) {
	g := chainQuery()
	if got := g.Targets(); len(got) != 2 || got[0] != "v1" || got[1] != "v3" {
		t.Errorf("Targets = %v", got)
	}
	if got := g.Specifics(); len(got) != 2 || got[0] != "v2" || got[1] != "v4" {
		t.Errorf("Specifics = %v", got)
	}
}

// TestDecomposeChain reproduces the paper's Example 2: the chain query
// splits at pivot v1 into g1 = <v2-e1-v1> and g2 = <v4-e3-v3-e2-v1>.
func TestDecomposeChain(t *testing.T) {
	d, err := DecomposeWithPivot(chainQuery(), "v1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 2 {
		t.Fatalf("got %d sub-queries, want 2: %+v", len(d.Subs), d.Subs)
	}
	if got := pathString(d.Subs[0]); got != "v2-v1" {
		t.Errorf("g1 = %s, want v2-v1", got)
	}
	if got := pathString(d.Subs[1]); got != "v4-v3-v1" {
		t.Errorf("g2 = %s, want v4-v3-v1", got)
	}
	for i, s := range d.Subs {
		if s.End() != "v1" {
			t.Errorf("sub %d ends at %s, want pivot v1", i, s.End())
		}
	}
}

// TestDecomposeTriangle: pivot v1 gives g1 = <v3-e1-v1>,
// g2 = <v3-e2-v2-e3-v1> (both edge-disjoint, both end at pivot).
func TestDecomposeTriangle(t *testing.T) {
	d, err := DecomposeWithPivot(triangleQuery(), "v1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 2 {
		t.Fatalf("got %d sub-queries, want 2", len(d.Subs))
	}
	seenEdges := 0
	for _, s := range d.Subs {
		seenEdges += s.Len()
		if s.End() != "v1" {
			t.Errorf("sub %v should end at pivot", s.NodeIDs)
		}
	}
	if seenEdges != 3 {
		t.Errorf("edge cover uses %d edge slots, want 3", seenEdges)
	}
}

// TestDecomposeComplexPivots reproduces the paper's Figure 16(b) and
// Table V: pivot v1 (group A) needs a 3-edge sub-query (the walk from v5
// must continue through v2 to reach v1), while pivot v2 (group B) splits
// into sub-queries of at most 2 edges — which is why v2 is the better
// pivot in Table V.
func TestDecomposeComplexPivots(t *testing.T) {
	a, err := DecomposeWithPivot(complexQuery(), "v1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Subs) != 3 {
		t.Fatalf("pivot v1: got %d subs, want 3: %v", len(a.Subs), describe(a))
	}
	maxLen := 0
	for _, s := range a.Subs {
		if s.End() != "v1" {
			t.Errorf("pivot v1: sub %v must end at pivot", s.NodeIDs)
		}
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if maxLen != 3 {
		t.Errorf("pivot v1: longest sub-query = %d edges, want 3 (%v)", maxLen, describe(a))
	}

	b, err := DecomposeWithPivot(complexQuery(), "v2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Subs) != 3 {
		t.Fatalf("pivot v2: got %d subs, want 3: %v", len(b.Subs), describe(b))
	}
	for _, s := range b.Subs {
		if s.End() != "v2" {
			t.Errorf("pivot v2: sub %v must end at pivot (%v)", s.NodeIDs, describe(b))
		}
		if s.Len() > 2 {
			t.Errorf("pivot v2: sub %v has %d edges, want <= 2", s.NodeIDs, s.Len())
		}
	}
	if a.Cost <= b.Cost {
		t.Errorf("cost(pivot v1)=%.0f should exceed cost(pivot v2)=%.0f", a.Cost, b.Cost)
	}
}

// TestDecomposeCoversAllEdges checks that the union of sub-queries covers
// every query edge (Definition 6: E_Q = ∪E_i) and that each sub-query is a
// simple path from a specific node to the pivot.
func TestDecomposeCoversAllEdges(t *testing.T) {
	for _, g := range []*Graph{chainQuery(), triangleQuery(), complexQuery()} {
		for _, pivot := range g.Targets() {
			d, err := DecomposeWithPivot(g, pivot, Options{})
			if err != nil {
				t.Fatalf("pivot %s: %v", pivot, err)
			}
			type ek struct{ f, to, p string }
			seen := make(map[ek]bool)
			for _, s := range d.Subs {
				if len(s.NodeIDs) != s.Len()+1 {
					t.Errorf("pivot %s: sub %v malformed", pivot, s.NodeIDs)
				}
				n, ok := g.NodeByID(s.Anchor())
				if !ok || !n.Specific() {
					t.Errorf("pivot %s: sub %v anchor is not specific", pivot, s.NodeIDs)
				}
				if s.End() != pivot {
					t.Errorf("pivot %s: sub %v does not end at pivot", pivot, s.NodeIDs)
				}
				ids := make(map[string]bool)
				for _, id := range s.NodeIDs {
					if ids[id] {
						t.Errorf("pivot %s: sub %v repeats node %s", pivot, s.NodeIDs, id)
					}
					ids[id] = true
				}
				for _, e := range s.Edges {
					seen[ek{e.From, e.To, e.Predicate}] = true
				}
			}
			for _, e := range g.Edges {
				if !seen[ek{e.From, e.To, e.Predicate}] {
					t.Errorf("pivot %s: edge %+v not covered", pivot, e)
				}
			}
		}
	}
}

func TestDecomposeMinCostPrefersCheapPivot(t *testing.T) {
	// On the complex query the minCost strategy should prefer v2: all its
	// sub-queries are short, whereas pivot v1 requires a 2-edge residual
	// path (larger d̄^(n̂·|E_i|) term).
	d, err := Decompose(complexQuery(), Options{Strategy: MinCost})
	if err != nil {
		t.Fatal(err)
	}
	if d.Pivot != "v2" {
		t.Errorf("minCost pivot = %s, want v2 (%v)", d.Pivot, describe(d))
	}
}

func TestDecomposeRandomPivot(t *testing.T) {
	if _, err := Decompose(chainQuery(), Options{Strategy: RandomPivot}); err == nil {
		t.Error("RandomPivot without Rng should fail")
	}
	rng := rand.New(rand.NewSource(1))
	seen := make(map[string]bool)
	for i := 0; i < 30; i++ {
		d, err := Decompose(chainQuery(), Options{Strategy: RandomPivot, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		seen[d.Pivot] = true
	}
	if len(seen) < 2 {
		t.Errorf("random pivot never varied: %v", seen)
	}
}

func TestDecomposeBadPivot(t *testing.T) {
	if _, err := DecomposeWithPivot(chainQuery(), "nope", Options{}); err == nil {
		t.Error("unknown pivot should fail")
	}
	if _, err := DecomposeWithPivot(chainQuery(), "v2", Options{}); err == nil {
		t.Error("specific-node pivot should fail")
	}
}

func TestDecomposeInvalidStrategy(t *testing.T) {
	if _, err := Decompose(chainQuery(), Options{Strategy: PivotStrategy(99)}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestDecomposeSingleEdge(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
		},
		Edges: []Edge{{From: "v1", To: "v2", Predicate: "assembly"}},
	}
	d, err := Decompose(g, Options{Strategy: MinCost})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 1 || d.Subs[0].Len() != 1 || d.Pivot != "v1" {
		t.Errorf("single-edge decomposition = %v", describe(d))
	}
	if d.Subs[0].Anchor() != "v2" || d.Subs[0].End() != "v1" {
		t.Errorf("anchor/end = %s/%s", d.Subs[0].Anchor(), d.Subs[0].End())
	}
}

// TestDecomposeDanglingTargetLeaf: a target leaf hanging off the pivot can
// only be covered when the leaf itself is the pivot; minCost must discover
// that, and the infeasible explicit pivot must fail cleanly.
func TestDecomposeDanglingTargetLeaf(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{ID: "v1", Type: "A"},
			{ID: "v2", Name: "X", Type: "B"},
			{ID: "v3", Type: "C"}, // leaf target hanging off v1
		},
		Edges: []Edge{
			{From: "v2", To: "v1", Predicate: "p"},
			{From: "v1", To: "v3", Predicate: "q"},
		},
	}
	if _, err := DecomposeWithPivot(g, "v1", Options{}); err == nil {
		t.Error("pivot v1 cannot cover the dangling edge; want error")
	}
	d, err := Decompose(g, Options{Strategy: MinCost})
	if err != nil {
		t.Fatalf("minCost should find the feasible pivot: %v", err)
	}
	if d.Pivot != "v3" {
		t.Errorf("pivot = %s, want v3", d.Pivot)
	}
	if len(d.Subs) != 1 || d.Subs[0].Len() != 2 {
		t.Errorf("decomposition = %v", describe(d))
	}
}

// TestDecomposeInfeasibleCycle: a target-only cycle plus a pendant pivot
// admits no simple-path cover from the single specific node; every pivot
// must fail with a clean error (and the dead-end walks must roll their
// edge coverage back rather than silently dropping edges).
func TestDecomposeInfeasibleCycle(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{ID: "v1", Type: "A"},
			{ID: "v2", Name: "X", Type: "B"},
			{ID: "v3", Type: "C"},
			{ID: "v4", Type: "D"},
			{ID: "v5", Type: "E"},
		},
		Edges: []Edge{
			{From: "v2", To: "v3", Predicate: "e1"},
			{From: "v3", To: "v1", Predicate: "e2"},
			{From: "v3", To: "v4", Predicate: "e3"},
			{From: "v4", To: "v5", Predicate: "e4"},
			{From: "v5", To: "v3", Predicate: "e5"},
		},
	}
	if _, err := Decompose(g, Options{Strategy: MinCost}); err == nil {
		t.Error("infeasible query should fail decomposition")
	}
}

// TestDecomposeRandomInvariants stress-tests the walk/rollback machinery:
// on random connected query graphs, every successful decomposition must
// cover all edges with simple paths from specific nodes to the pivot.
func TestDecomposeRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	type ek struct{ f, to, p string }
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(6) + 2
		g := &Graph{}
		for i := 0; i < n; i++ {
			node := Node{ID: fmt.Sprintf("v%d", i), Type: "T"}
			if i == 0 || rng.Float64() < 0.3 {
				node.Name = fmt.Sprintf("N%d", i)
			}
			g.Nodes = append(g.Nodes, node)
		}
		// Random spanning chain plus extra edges for cycles.
		for i := 1; i < n; i++ {
			j := rng.Intn(i)
			g.Edges = append(g.Edges, Edge{From: g.Nodes[j].ID, To: g.Nodes[i].ID,
				Predicate: fmt.Sprintf("p%d", i)})
		}
		extra := rng.Intn(3)
		for x := 0; x < extra; x++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			g.Edges = append(g.Edges, Edge{From: g.Nodes[a].ID, To: g.Nodes[b].ID,
				Predicate: fmt.Sprintf("x%d", x)})
		}
		if g.Validate() != nil {
			continue // e.g. all nodes specific: no targets
		}
		for _, pivot := range g.Targets() {
			d, err := DecomposeWithPivot(g, pivot, Options{})
			if err != nil {
				continue // infeasible pivots are allowed to fail
			}
			seen := map[ek]bool{}
			for _, s := range d.Subs {
				if s.End() != pivot {
					t.Fatalf("trial %d: sub %v does not end at pivot %s", trial, s.NodeIDs, pivot)
				}
				anchor, _ := g.NodeByID(s.Anchor())
				if !anchor.Specific() {
					t.Fatalf("trial %d: sub %v anchored at target", trial, s.NodeIDs)
				}
				ids := map[string]bool{}
				for _, id := range s.NodeIDs {
					if ids[id] {
						t.Fatalf("trial %d: sub %v repeats %s", trial, s.NodeIDs, id)
					}
					ids[id] = true
				}
				if len(s.NodeIDs) != s.Len()+1 {
					t.Fatalf("trial %d: malformed sub %v", trial, s.NodeIDs)
				}
				for i, e := range s.Edges {
					// Each edge must connect consecutive path nodes.
					a, b := s.NodeIDs[i], s.NodeIDs[i+1]
					if !(e.From == a && e.To == b) && !(e.From == b && e.To == a) {
						t.Fatalf("trial %d: edge %+v does not connect %s-%s", trial, e, a, b)
					}
					seen[ek{e.From, e.To, e.Predicate}] = true
				}
			}
			for _, e := range g.Edges {
				if !seen[ek{e.From, e.To, e.Predicate}] {
					t.Fatalf("trial %d pivot %s: edge %+v dropped from cover (%s)",
						trial, pivot, e, describe(d))
				}
			}
		}
	}
}

func pathString(s SubQuery) string { return strings.Join(s.NodeIDs, "-") }

func describe(d *Decomposition) string {
	var b strings.Builder
	b.WriteString("pivot=" + d.Pivot)
	for _, s := range d.Subs {
		b.WriteString(" [" + pathString(s) + "]")
	}
	return b.String()
}
