package keyword

import (
	"strings"
	"unicode"

	"semkg/internal/kg"
	"semkg/internal/strutil"
)

// Token is one keyword after normalization and fusion. Raw preserves the
// user's spelling (for echoes and "unmatched" reports); Norm is the
// strutil.Normalize form the kg indexes are keyed by.
type Token struct {
	Raw  string
	Norm string
	// Interps are the ranked interpretations (empty when the keyword hits
	// nothing). Populated by Assemble, not by Tokenize.
	Interps []Interp
}

// Tokenize splits input into normalized keywords using the exact rules
// the PR-1 name indexes were built with: fields split on whitespace and
// commas, each normalized with strutil.Normalize. Adjacent tokens fuse
// greedily (longest first, up to 4 words) when the underscore-joined form
// hits a node name, type name, or predicate name exactly — "new york
// city" becomes one keyword when the graph knows the entity. Fusion only
// ever consults the exact (norm) indexes, so it costs one map probe per
// attempted width.
func Tokenize(g *kg.Graph, input string) []Token {
	fields := strings.FieldsFunc(input, func(r rune) bool {
		return unicode.IsSpace(r) || r == ','
	})
	type piece struct{ raw, norm string }
	var pieces []piece
	for _, f := range fields {
		n := strutil.Normalize(f)
		if n == "" {
			continue
		}
		pieces = append(pieces, piece{raw: f, norm: n})
	}
	var out []Token
	for i := 0; i < len(pieces); {
		fused := false
		for w := min(4, len(pieces)-i); w >= 2; w-- {
			norms := make([]string, w)
			raws := make([]string, w)
			for j := 0; j < w; j++ {
				norms[j] = pieces[i+j].norm
				raws[j] = pieces[i+j].raw
			}
			joined := strings.Join(norms, "_")
			if exactHit(g, joined) {
				out = append(out, Token{Raw: strings.Join(raws, " "), Norm: joined})
				i += w
				fused = true
				break
			}
		}
		if !fused {
			out = append(out, Token{Raw: pieces[i].raw, Norm: pieces[i].norm})
			i++
		}
	}
	return out
}

// exactHit reports whether norm is an exact normalized node name, type
// name, or predicate name in g.
func exactHit(g *kg.Graph, norm string) bool {
	if len(g.NodesByNormName(norm)) > 0 || len(g.TypesByNormName(norm)) > 0 {
		return true
	}
	for _, p := range g.Predicates() {
		if strutil.Normalize(p) == norm {
			return true
		}
	}
	return false
}
