package kg

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"semkg/internal/strutil"
)

// randomNamedGraph builds a graph with name shapes that exercise every
// index path: multi-word names (initials), shared prefixes, case/separator
// variants, and duplicate normalized forms.
func randomNamedGraph(rng *rand.Rand) *Graph {
	words := []string{"federal", "republic", "of", "germany", "auto", "club",
		"Ger", "GER", "bmw", "BMW-320", "bmw 320", "United", "Union", "u"}
	types := []string{"Automobile", "Auto Club", "Country", "federal republic", ""}
	n := rng.Intn(40) + 10
	b := NewBuilder(n, n*2)
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		parts := rng.Intn(3) + 1
		name := ""
		for j := 0; j < parts; j++ {
			if j > 0 {
				name += " "
			}
			name += words[rng.Intn(len(words))]
		}
		// Unique suffix on half the nodes; the rest collide on names and
		// are deduped by AddNode, leaving colliding *normalized* forms.
		if rng.Float64() < 0.5 {
			name = fmt.Sprintf("%s %d", name, i)
		}
		ids = append(ids, b.AddNode(name, types[rng.Intn(len(types))]))
	}
	preds := []string{"p0", "p1", "p2"}
	m := rng.Intn(3*n) + n
	for i := 0; i < m; i++ {
		b.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], preds[rng.Intn(len(preds))])
	}
	return b.Build()
}

func TestNodePredsMatchesNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		g := randomNamedGraph(rng)
		for u := 0; u < g.NumNodes(); u++ {
			want := map[PredID]bool{}
			for _, h := range g.Neighbors(NodeID(u)) {
				want[h.Pred] = true
			}
			got := g.NodePreds(NodeID(u))
			if len(got) != len(want) {
				t.Fatalf("trial %d node %d: NodePreds %v, adjacency has %d distinct", trial, u, got, len(want))
			}
			seen := map[PredID]bool{}
			for _, p := range got {
				if !want[p] || seen[p] {
					t.Fatalf("trial %d node %d: NodePreds %v has wrong/duplicate %d", trial, u, got, p)
				}
				seen[p] = true
			}
		}
	}
}

func TestNameIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g := randomNamedGraph(rng)
		// Probe with every node's normalized name, its prefixes, and its
		// initials, plus junk.
		probes := map[string]bool{"": true, "x": true, "zz": true}
		for u := 0; u < g.NumNodes(); u++ {
			n := strutil.Normalize(g.NodeName(NodeID(u)))
			probes[n] = true
			if len(n) >= 3 {
				probes[n[:2]] = true
				probes[n[:len(n)-1]] = true
			}
			all, sig := strutil.Initials(n)
			probes[all] = true
			probes[sig] = true
		}
		for probe := range probes {
			var wantNorm, wantInit, wantPrefix []NodeID
			for u := 0; u < g.NumNodes(); u++ {
				n := strutil.Normalize(g.NodeName(NodeID(u)))
				if n == probe {
					wantNorm = append(wantNorm, NodeID(u))
				}
				all, sig := strutil.Initials(n)
				if len(probe) >= 2 && len(probe) < len(n) && (all == probe || sig == probe) {
					wantInit = append(wantInit, NodeID(u))
				}
				if len(n) > len(probe) && n[:len(probe)] == probe {
					wantPrefix = append(wantPrefix, NodeID(u))
				}
			}
			checkIDs(t, "NodesByNormName", probe, g.NodesByNormName(probe), wantNorm, false)
			checkIDs(t, "NodesByInitials", probe, g.NodesByInitials(probe), wantInit, false)
			checkIDs(t, "NodesByProperNormPrefix", probe, g.NodesByProperNormPrefix(probe), wantPrefix, true)
		}
	}
}

func checkIDs(t *testing.T, fn, probe string, got, want []NodeID, sortFirst bool) {
	t.Helper()
	if sortFirst {
		got = append([]NodeID(nil), got...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if len(got) != len(want) {
		t.Fatalf("%s(%q) = %v, want %v", fn, probe, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s(%q) = %v, want %v", fn, probe, got, want)
		}
	}
}

func TestTypeIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomNamedGraph(rng)
	for i := 0; i < g.NumTypes(); i++ {
		n := strutil.Normalize(g.TypeName(TypeID(i)))
		got := g.TypesByNormName(n)
		found := false
		for _, tid := range got {
			if tid == TypeID(i) {
				found = true
			}
			if strutil.Normalize(g.TypeName(tid)) != n {
				t.Fatalf("TypesByNormName(%q) returned non-matching type %q", n, g.TypeName(tid))
			}
		}
		if !found {
			t.Fatalf("TypesByNormName(%q) missed type %q", n, g.TypeName(TypeID(i)))
		}
	}
	if got := g.TypesByNormName("no_such_type_name"); got != nil {
		t.Fatalf("TypesByNormName(junk) = %v, want nil", got)
	}
}
