package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"semkg/internal/kg"
)

// snapshotOf serializes a served graph; kg.WriteSnapshot is
// deterministic, so byte equality here is full structural equality —
// every table, every index, field by field.
func snapshotOf(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := kg.WriteSnapshot(&buf, e.Engine().Graph()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// applyStatements replays one committed batch through the follower's
// generation-gated Apply path.
func applyStatements(t *testing.T, e *Engine, stmts []kg.Statement) {
	t.Helper()
	d := e.NewDelta()
	for _, st := range stmts {
		if err := d.ApplyStatement(st); err != nil {
			t.Fatalf("replaying %+v: %v", st, err)
		}
	}
	if _, err := e.Apply(d); err != nil {
		t.Fatal(err)
	}
}

// resync rebuilds the follower from a canonical dump of the primary's
// graph — the full-snapshot fallback a follower takes when the primary
// has compacted past its generation.
func resync(t *testing.T, follower, primary *Engine) {
	t.Helper()
	stmts, err := kg.GraphStatements(primary.Engine().Graph())
	if err != nil {
		t.Fatal(err)
	}
	d := kg.NewDelta(kg.Empty())
	for _, st := range stmts {
		if err := d.ApplyStatement(st); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.RebuildGraph(d.Commit()); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerReplayConvergesUnderFaults is the replication convergence
// property: a follower replaying a random interleaving of committed
// deltas, mid-batch disconnects (partial batches discarded, batch
// re-sent), and full snapshot resyncs always converges to a graph
// snapshot-byte identical to the primary's — same nodes, types, edges,
// intern tables, and derived indexes.
func TestFollowerReplayConvergesUnderFaults(t *testing.T) {
	preds := []string{"assembly", "manufacturer", "country", "locationCountry", "borders"}
	for _, seed := range []int64{1, 5, 23, 77} {
		rng := rand.New(rand.NewSource(seed))

		primary := New(testEngine(t), Config{Build: testBuild()})
		// The follower bootstraps empty, exactly like a fresh -follow
		// process before its first snapshot stream.
		emptyEng, err := testBuild()(kg.Empty())
		if err != nil {
			t.Fatalf("seed %d: engine over empty graph: %v", seed, err)
		}
		follower := New(emptyEng, Config{Build: testBuild()})
		resync(t, follower, primary) // initial bootstrap snapshot

		// backlog holds committed-but-unreplayed batches; cursor is the
		// follower's position in it.
		var backlog [][]kg.Statement
		cursor := 0

		for step := 0; step < 120; step++ {
			switch r := rng.Float64(); {
			case r < 0.45: // primary commits a delta of random triples
				d := primary.NewDelta()
				for i, n := 0, 1+rng.Intn(6); i < n; i++ {
					var s, p, o string
					if rng.Float64() < 0.3 {
						s = fmt.Sprintf("E%d", rng.Intn(60))
						p = kg.TypePredicate
						o = fmt.Sprintf("T%d", rng.Intn(8))
					} else {
						s = fmt.Sprintf("E%d", rng.Intn(60))
						p = preds[rng.Intn(len(preds))]
						o = fmt.Sprintf("E%d", rng.Intn(60))
					}
					if err := d.ApplyTriple(s, p, o); err != nil {
						t.Fatal(err)
					}
				}
				stmts := append([]kg.Statement(nil), d.Statements()...)
				if _, err := primary.Apply(d); err != nil {
					t.Fatal(err)
				}
				backlog = append(backlog, stmts)
			case r < 0.65: // follower replays the next committed batch
				if cursor < len(backlog) {
					applyStatements(t, follower, backlog[cursor])
					cursor++
				}
			case r < 0.85: // disconnect mid-batch: partial replay discarded
				if cursor < len(backlog) {
					batch := backlog[cursor]
					d := follower.NewDelta()
					for _, st := range batch[:rng.Intn(len(batch)+1)] {
						if err := d.ApplyStatement(st); err != nil {
							t.Fatal(err)
						}
					}
					// The delta is dropped without Apply: nothing
					// published, cursor unmoved — the reconnect re-sends
					// the whole batch.
				}
			default: // primary compacted past us: snapshot resync
				resync(t, follower, primary)
				cursor = len(backlog)
			}
		}

		// Drain the backlog and compare field by field.
		for ; cursor < len(backlog); cursor++ {
			applyStatements(t, follower, backlog[cursor])
		}
		pg, fg := primary.Engine().Graph(), follower.Engine().Graph()
		if fg.NumNodes() != pg.NumNodes() || fg.NumEdges() != pg.NumEdges() {
			t.Fatalf("seed %d: follower %d nodes/%d edges, primary %d/%d",
				seed, fg.NumNodes(), fg.NumEdges(), pg.NumNodes(), pg.NumEdges())
		}
		if !bytes.Equal(snapshotOf(t, follower), snapshotOf(t, primary)) {
			t.Fatalf("seed %d: follower snapshot differs from primary", seed)
		}
	}
}
