package keyword

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/core"
	"semkg/internal/merge"
	"semkg/internal/query"
	"semkg/internal/serve"
)

// Frontend serves keyword queries over one serving engine. Every
// candidate executes through serve.Engine.Search, so the serving layer's
// result cache, plan cache, singleflight and admission control all apply
// per candidate; on top of that the front end keeps its own
// generation-gated cache of blended responses, because assembly inputs
// (the name indexes) change exactly when the engine generation does.
// Safe for concurrent use.
type Frontend struct {
	srv *serve.Engine
	cfg Config

	mu    sync.Mutex
	cache map[string]*cacheEntry

	assemblies    atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	candidateRuns atomic.Uint64
	suggests      atomic.Uint64
}

// cacheEntry stamps a blended response with the engine generation its
// assembly and execution ran on; a stamp older than the served generation
// means the match set may have changed, so the entry never answers.
type cacheEntry struct {
	gen  uint64
	resp *Response
}

// New builds a keyword front end over srv.
func New(srv *serve.Engine, cfg Config) *Frontend {
	return &Frontend{srv: srv, cfg: cfg.withDefaults(), cache: make(map[string]*cacheEntry)}
}

// Config returns the front end's effective (defaulted) configuration.
func (f *Frontend) Config() Config { return f.cfg }

// RankedAnswer is one blended answer: an engine answer plus the candidate
// that produced it and the blended score it ranks by.
type RankedAnswer struct {
	// Entity is the answer entity (the pivot binding); blending dedups on
	// it.
	Entity string
	// Blended is candidate score × per-part-normalized answer score.
	Blended float64
	// Candidate indexes Assembly.Candidates.
	Candidate int
	// Answer is the engine answer, unchanged.
	Answer core.Answer
}

// CandidateRun reports one candidate's execution.
type CandidateRun struct {
	// Index indexes Assembly.Candidates.
	Index int
	// Answers is how many answers the candidate contributed.
	Answers int
	// Elapsed is the candidate's end-to-end serving time.
	Elapsed time.Duration
	// Approximate mirrors core.Result.Approximate (TBQ mode).
	Approximate bool
	// Err is the candidate's failure, "" on success.
	Err string
}

// Response is a blended keyword-search response.
type Response struct {
	// Assembly is the full assembly outcome (tokens, unmatched keywords,
	// every scored candidate — executed or not).
	Assembly *Assembly
	// Executed is how many candidates ran (the top Executed of
	// Assembly.Candidates).
	Executed int
	// Runs reports each executed candidate.
	Runs []CandidateRun
	// Answers is the blended, per-entity-deduplicated top-k.
	Answers []RankedAnswer
	// Elapsed covers assembly plus execution and blending.
	Elapsed time.Duration
	// Generation is the engine generation served.
	Generation uint64
}

// Stats is a snapshot of front-end counters (expvar surface).
type Stats struct {
	// Assemblies counts assembly runs (cache hits skip assembly).
	Assemblies uint64 `json:"assemblies"`
	// CacheHits / CacheMisses count the blended-response cache.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CandidateRuns counts per-candidate executions handed to the serving
	// layer (which may itself answer them from its result cache).
	CandidateRuns uint64 `json:"candidate_runs"`
	// Suggests counts autocomplete calls.
	Suggests uint64 `json:"suggests"`
}

// Stats returns a point-in-time snapshot of the counters.
func (f *Frontend) Stats() Stats {
	return Stats{
		Assemblies:    f.assemblies.Load(),
		CacheHits:     f.cacheHits.Load(),
		CacheMisses:   f.cacheMisses.Load(),
		CandidateRuns: f.candidateRuns.Load(),
		Suggests:      f.suggests.Load(),
	}
}

// Search assembles candidates for input, executes the top maxCandidates
// (0 = the configured default) concurrently through the serving layer,
// and blends the per-candidate top-k lists into one deduplicated ranking.
// An input that assembles no executable candidate returns an empty
// response, not an error; execution errors surface only when every
// candidate fails.
func (f *Frontend) Search(ctx context.Context, input string, opts core.Options, maxCandidates int) (*Response, error) {
	b, err := f.prepare(input, opts, maxCandidates)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	eng, gen := f.srv.Current()
	cacheable := f.cfg.CacheSize > 0 && opts.Clock == nil && opts.Rng == nil && opts.Strategy != query.RandomPivot
	key := f.cacheKey(input, opts, b)
	if cacheable {
		if resp := f.cacheGet(key, gen); resp != nil {
			f.cacheHits.Add(1)
			return resp, nil
		}
		f.cacheMisses.Add(1)
	}

	asm := Assemble(eng.Graph(), input, f.cfg)
	f.assemblies.Add(1)
	execs := asm.Candidates
	if len(execs) > b {
		execs = execs[:b]
	}
	runs := make([]CandidateRun, len(execs))
	results := make([]*core.Result, len(execs))
	errs := make([]error, len(execs))
	var wg sync.WaitGroup
	for i := range execs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			res, err := f.srv.Search(ctx, execs[i].Query, opts)
			runs[i] = CandidateRun{Index: i, Elapsed: time.Since(t0)}
			if err != nil {
				errs[i] = err
				runs[i].Err = err.Error()
				return
			}
			results[i] = res
			runs[i].Answers = len(res.Answers)
			runs[i].Approximate = res.Approximate
		}(i)
		f.candidateRuns.Add(1)
	}
	wg.Wait()

	failed := 0
	for _, e := range errs {
		if e != nil {
			failed++
		}
	}
	if len(execs) > 0 && failed == len(execs) {
		return nil, worstError(errs)
	}

	resp := &Response{
		Assembly:   asm,
		Executed:   len(execs),
		Runs:       runs,
		Answers:    blend(execs, results, opts.Normalized().K),
		Generation: gen,
		Elapsed:    time.Since(start),
	}
	if cacheable && failed == 0 && ctx.Err() == nil && f.srv.Generation() == gen {
		f.cachePut(key, gen, resp)
	}
	return resp, nil
}

// prepare validates the request and resolves the candidate budget.
func (f *Frontend) prepare(input string, opts core.Options, maxCandidates int) (int, error) {
	if err := opts.Validate(); err != nil {
		return 0, core.BadRequestError{Err: err}
	}
	if strings.TrimSpace(input) == "" {
		return 0, core.BadRequestError{Err: fmt.Errorf("keyword: empty keywords")}
	}
	if maxCandidates < 0 {
		return 0, core.BadRequestError{Err: fmt.Errorf("keyword: max_candidates = %d out of range (must be non-negative; 0 uses the default %d)", maxCandidates, f.cfg.MaxCandidates)}
	}
	b := maxCandidates
	if b == 0 {
		b = f.cfg.MaxCandidates
	}
	if b > 16 {
		b = 16
	}
	return b, nil
}

// blend folds per-candidate result lists into the deduplicated blended
// top-k via merge.Blend. Within a candidate the blended order equals the
// engine's rank order (one common factor), so the lists are pre-ranked as
// Blend requires.
func blend(execs []Candidate, results []*core.Result, k int) []RankedAnswer {
	lists := make([][]RankedAnswer, 0, len(results))
	for i, res := range results {
		if res == nil {
			continue
		}
		l := make([]RankedAnswer, 0, len(res.Answers))
		for _, a := range res.Answers {
			l = append(l, RankedAnswer{
				Entity:    a.PivotName,
				Blended:   execs[i].Score * normalizedScore(a),
				Candidate: i,
				Answer:    a,
			})
		}
		lists = append(lists, l)
	}
	return merge.Blend(lists, k, func(a RankedAnswer) string { return a.Entity }, func(a, b RankedAnswer) bool {
		if a.Blended != b.Blended {
			return a.Blended > b.Blended
		}
		return a.Entity < b.Entity
	})
}

// worstError selects the error to surface when every candidate failed:
// an overload (with the largest RetryAfter, so the client backs off
// enough for the whole batch), else the first failure.
func worstError(errs []error) error {
	var over *serve.OverloadedError
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if o, ok := err.(*serve.OverloadedError); ok && (over == nil || o.RetryAfter > over.RetryAfter) {
			over = o
		}
	}
	if over != nil {
		return over
	}
	return first
}

// cacheKey canonicalizes (input, normalized options, candidate budget).
// Word boundaries are preserved (unlike strutil.Normalize) because they
// affect tokenization.
func (f *Frontend) cacheKey(input string, opts core.Options, b int) string {
	o := opts.Normalized()
	o.Rng = nil
	o.Clock = nil
	words := strings.Fields(strings.ToLower(strings.TrimSpace(input)))
	return fmt.Sprintf("%d|%s|%+v", b, strings.Join(words, " "), o)
}

func (f *Frontend) cacheGet(key string, gen uint64) *Response {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.cache[key]; ok && e.gen == gen {
		return e.resp
	}
	return nil
}

// cachePut stores resp; at capacity the map resets wholesale (entries are
// small, and every Rebuild implicitly flushes by generation anyway).
func (f *Frontend) cachePut(key string, gen uint64, resp *Response) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.cache) >= f.cfg.CacheSize {
		f.cache = make(map[string]*cacheEntry)
	}
	f.cache[key] = &cacheEntry{gen: gen, resp: resp}
}
