package semgraph

import (
	"math"
	"testing"

	"semkg/internal/embed"
	"semkg/internal/kg"
)

// testSetup builds a 4-predicate graph and a hand-crafted predicate space:
// product ≈ assembly (0.98-ish), designer somewhat similar, language far.
func testSetup(t *testing.T) (*kg.Graph, *embed.Space) {
	t.Helper()
	b := kg.NewBuilder(8, 8)
	auto := b.AddNode("Audi", "Automobile")
	ger := b.AddNode("Germany", "Country")
	person := b.AddNode("Peter", "Person")
	lang := b.AddNode("German", "Language")
	b.AddEdge(auto, ger, "assembly")
	b.AddEdge(auto, person, "designer")
	b.AddEdge(ger, lang, "language")
	b.AddEdge(auto, ger, "product")
	g := b.Build()

	vecs := map[string]embed.Vector{
		"assembly": {1, 0.1, 0},
		"designer": {0.6, 0.8, 0},
		"language": {-0.2, 0.1, 0.97},
		"product":  {0.99, 0.05, 0.02},
	}
	names := g.Predicates()
	ordered := make([]embed.Vector, len(names))
	for i, n := range names {
		ordered[i] = vecs[n]
	}
	sp, err := embed.NewSpace(names, ordered)
	if err != nil {
		t.Fatal(err)
	}
	return g, sp
}

func TestNewWeighterExactPredicate(t *testing.T) {
	g, sp := testSetup(t)
	w, err := NewWeighter(g, sp, []string{"product"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 1 {
		t.Fatalf("Segments = %d", w.Segments())
	}
	prod := g.PredByName("product")
	asm := g.PredByName("assembly")
	lang := g.PredByName("language")
	if got := w.Weight(prod, 0); got != 1 {
		t.Errorf("Weight(product) = %v, want 1 (self)", got)
	}
	if wa := w.Weight(asm, 0); wa < 0.9 {
		t.Errorf("Weight(assembly) = %v, want > 0.9", wa)
	}
	// Unrelated predicates sit below the angular midpoint 0.5 (negative
	// cosine), far under any useful τ.
	if wl := w.Weight(lang, 0); wl >= 0.5 {
		t.Errorf("Weight(language) = %v, want < 0.5", wl)
	}
}

func TestWeightClamped(t *testing.T) {
	g, sp := testSetup(t)
	w, err := NewWeighter(g, sp, []string{"language"})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.NumPredicates(); p++ {
		v := w.Weight(kg.PredID(p), 0)
		if v < MinWeight || v > 1 {
			t.Errorf("Weight(%s) = %v out of (0,1]", g.PredName(kg.PredID(p)), v)
		}
	}
}

func TestResolvePredicateFallback(t *testing.T) {
	g, _ := testSetup(t)
	p, err := ResolvePredicate(g, "assembley") // typo
	if err != nil {
		t.Fatal(err)
	}
	if g.PredName(p) != "assembly" {
		t.Errorf("fallback resolved to %q, want assembly", g.PredName(p))
	}
	if _, err := ResolvePredicate(kg.NewBuilder(0, 0).Build(), "x"); err == nil {
		t.Error("empty vocabulary should fail")
	}
}

func TestNewWeighterValidation(t *testing.T) {
	g, sp := testSetup(t)
	if _, err := NewWeighter(g, sp, nil); err == nil {
		t.Error("no predicates should fail")
	}
	other, err := embed.NewSpace([]string{"only"}, []embed.Vector{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWeighter(g, other, []string{"assembly"}); err == nil {
		t.Error("mismatched space size should fail")
	}
}

func TestNodeMaxSingleSegment(t *testing.T) {
	g, sp := testSetup(t)
	w, err := NewWeighter(g, sp, []string{"product"})
	if err != nil {
		t.Fatal(err)
	}
	auto := g.NodeByName("Audi")
	// Audi's incident predicates: assembly, designer, product.
	want := math.Max(w.Weight(g.PredByName("assembly"), 0),
		math.Max(w.Weight(g.PredByName("designer"), 0), w.Weight(g.PredByName("product"), 0)))
	if got := w.NodeMax(auto, 0); got != want {
		t.Errorf("NodeMax(Audi) = %v, want %v", got, want)
	}
	// Cached path returns the same value.
	if got := w.NodeMax(auto, 0); got != want {
		t.Errorf("cached NodeMax = %v, want %v", got, want)
	}
	// Isolated-looking node: German has one incident edge (language).
	lang := g.NodeByName("German")
	if got := w.NodeMax(lang, 0); got != w.Weight(g.PredByName("language"), 0) {
		t.Errorf("NodeMax(German) = %v", got)
	}
}

func TestNodeMaxSuffix(t *testing.T) {
	g, sp := testSetup(t)
	// Two segments: first wants language (Audi's edges score low), second
	// wants product (Audi's edges score high). The suffix max at segment 0
	// must reflect the better later segment.
	w, err := NewWeighter(g, sp, []string{"language", "product"})
	if err != nil {
		t.Fatal(err)
	}
	auto := g.NodeByName("Audi")
	seg0 := w.NodeMax(auto, 0)
	seg1 := w.NodeMax(auto, 1)
	if seg0 < seg1 {
		t.Errorf("suffix max property violated: NodeMax(seg0)=%v < NodeMax(seg1)=%v", seg0, seg1)
	}
	if seg1 < 0.9 {
		t.Errorf("NodeMax(Audi, product segment) = %v, want ~1", seg1)
	}
}
