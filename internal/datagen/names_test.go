package datagen

import (
	"strings"
	"testing"

	"semkg/internal/kg"
)

func zipfProfile() Profile {
	p := smallProfile()
	p.NameStyle = NameStyleZipf
	return p
}

// TestZipfNamesRealistic: zipf naming produces multi-word names (1–4
// words), a substantial multi-word fraction, and no collisions — the
// builder would silently merge two entities that share a spelling, so
// the node count must match the plain-style world exactly.
func TestZipfNamesRealistic(t *testing.T) {
	plain := Generate(smallProfile())
	zipf := Generate(zipfProfile())

	if zipf.Graph.NumNodes() != plain.Graph.NumNodes() {
		t.Fatalf("zipf world has %d nodes, plain has %d — name collision merged entities",
			zipf.Graph.NumNodes(), plain.Graph.NumNodes())
	}
	multi := 0
	for u := 0; u < zipf.Graph.NumNodes(); u++ {
		name := zipf.Graph.NodeName(kg.NodeID(u))
		words := strings.Split(name, " ")
		if len(words) < 1 || len(words) > 5 { // 4 words + rare numeric suffix
			t.Fatalf("name %q has %d words, want 1–4 (+suffix)", name, len(words))
		}
		if len(words) > 1 {
			multi++
		}
		if strings.Contains(name, "_") && !strings.Contains(name, "Topic") {
			t.Fatalf("zipf world leaked a plain identifier: %q", name)
		}
	}
	if frac := float64(multi) / float64(zipf.Graph.NumNodes()); frac < 0.4 {
		t.Errorf("only %.0f%% of names are multi-word; zipf style should dominate", frac*100)
	}
}

// TestZipfNamesDeterministic: same seed, same names — byte for byte,
// node for node.
func TestZipfNamesDeterministic(t *testing.T) {
	a := Generate(zipfProfile())
	b := Generate(zipfProfile())
	if a.Graph.NumNodes() != b.Graph.NumNodes() {
		t.Fatal("zipf generation is not deterministic")
	}
	for u := 0; u < a.Graph.NumNodes(); u++ {
		if a.Graph.NodeName(kg.NodeID(u)) != b.Graph.NodeName(kg.NodeID(u)) {
			t.Fatalf("node %d named %q vs %q across identical runs",
				u, a.Graph.NodeName(kg.NodeID(u)), b.Graph.NodeName(kg.NodeID(u)))
		}
	}
}

// TestZipfPreservesWorldShape: the naming stream is seeded separately,
// so switching styles renames nodes without moving a single edge.
func TestZipfPreservesWorldShape(t *testing.T) {
	plain := Generate(smallProfile())
	zipf := Generate(zipfProfile())

	if plain.Graph.NumEdges() != zipf.Graph.NumEdges() ||
		plain.Graph.NumTypes() != zipf.Graph.NumTypes() ||
		plain.Graph.NumPredicates() != zipf.Graph.NumPredicates() {
		t.Fatalf("world shape differs across name styles: %v vs %v",
			plain.Graph.Stats(), zipf.Graph.Stats())
	}
	// Node IDs are allocated in generation order, so edge structure must
	// be identical ID for ID.
	for e := 0; e < plain.Graph.NumEdges(); e++ {
		pe, ze := plain.Graph.EdgeAt(kg.EdgeID(e)), zipf.Graph.EdgeAt(kg.EdgeID(e))
		if pe.Src != ze.Src || pe.Dst != ze.Dst || pe.Pred != ze.Pred {
			t.Fatalf("edge %d differs across name styles: %+v vs %+v", e, pe, ze)
		}
	}
	// Workloads follow the renaming but keep their sizes.
	if len(plain.Simple) != len(zipf.Simple) {
		t.Fatalf("workload sizes differ: %d vs %d", len(plain.Simple), len(zipf.Simple))
	}
	for i := range plain.Simple {
		if len(plain.Simple[i].Truth) != len(zipf.Simple[i].Truth) {
			t.Fatalf("query %d truth size differs across name styles", i)
		}
	}
}

// TestPlainNamesUnchanged: the default style still emits the classic
// identifiers — downstream goldens and docs depend on them.
func TestPlainNamesUnchanged(t *testing.T) {
	d := Generate(smallProfile())
	for _, want := range []string{"Country_0", "City_0_0", "Company_0", "Auto_0", "Person_0"} {
		if d.Graph.NodeByName(want) < 0 {
			t.Errorf("plain world missing classic name %q", want)
		}
	}
}
