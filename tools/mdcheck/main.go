// Command mdcheck keeps the prose honest: it extracts the Go code fences
// of the given markdown files and builds each one, and it verifies that
// every relative markdown link points at a file that exists. CI runs it
// over README.md and DESIGN.md, so a renamed flag, a deleted example or a
// moved document breaks the build instead of rotting silently.
//
// Rules:
//
//   - A ```go fence must be a complete, buildable program or package
//     (starting with a package clause, imports included). Fenced
//     fragments that cannot build on their own use a non-go info string
//     (```text) and are skipped.
//   - Fences with any other info string (sh, json, text, ...) are
//     ignored.
//   - Relative links ([x](path), path without a URL scheme) must resolve
//     against the markdown file's directory; #anchors are stripped first.
//
// Usage: go run ./tools/mdcheck README.md DESIGN.md
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = []string{"README.md", "DESIGN.md"}
	}
	failed := false
	for _, f := range files {
		if err := checkFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("mdcheck: %s ok\n", strings.Join(files, ", "))
}

func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(data)
	var problems []string
	problems = append(problems, checkLinks(path, text)...)
	problems = append(problems, checkGoFences(path, text)...)
	if len(problems) > 0 {
		return fmt.Errorf("%s:\n  %s", path, strings.Join(problems, "\n  "))
	}
	return nil
}

// fenceRe matches a fenced code block, capturing the info string and body.
var fenceRe = regexp.MustCompile("(?ms)^```([a-zA-Z0-9_-]*)[ \t]*\n(.*?)^```[ \t]*$")

// checkGoFences builds every ```go fence as a standalone package inside
// the module (so `import "semkg"` resolves).
func checkGoFences(path, text string) []string {
	var problems []string
	fences := fenceRe.FindAllStringSubmatchIndex(text, -1)
	for i, loc := range fences {
		lang := text[loc[2]:loc[3]]
		if lang != "go" {
			continue
		}
		body := text[loc[4]:loc[5]]
		line := 1 + strings.Count(text[:loc[0]], "\n")
		trimmed := strings.TrimSpace(body)
		if !strings.HasPrefix(trimmed, "package ") && !strings.HasPrefix(trimmed, "//") {
			problems = append(problems,
				fmt.Sprintf("line %d: go fence is not a complete program (no package clause); tag fragments as ```text", line))
			continue
		}
		if err := buildSnippet(body, i); err != nil {
			problems = append(problems, fmt.Sprintf("line %d: go fence does not build: %v", line, err))
		}
	}
	return problems
}

// buildSnippet writes the fence into a throwaway package directory inside
// the module and builds it.
func buildSnippet(body string, idx int) error {
	dir, err := os.MkdirTemp(".", ".mdcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(body), 0o644); err != nil {
		return err
	}
	cmd := exec.Command("go", "build", "-o", os.DevNull, "./"+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("%v\n%s", err, strings.TrimSpace(string(out)))
	}
	return nil
}

// linkRe matches inline markdown links; images share the syntax.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies relative link targets exist on disk.
func checkLinks(path, text string) []string {
	var problems []string
	base := filepath.Dir(path)
	withoutFences := fenceRe.ReplaceAllString(text, "")
	for _, m := range linkRe.FindAllStringSubmatch(withoutFences, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
			strings.HasPrefix(target, "mailto:") {
			continue
		}
		target = strings.SplitN(target, "#", 2)[0]
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(base, target)); err != nil {
			problems = append(problems, fmt.Sprintf("broken relative link %q", m[1]))
		}
	}
	return problems
}
