package faultinject

import "time"

// Schedule arms a process-level kill: after d, fire kill (close a
// listener, cancel a follower's context, SeverAll a proxy — whatever
// "the process died" means for the component under test). The returned
// cancel disarms it if the test finishes first; cancel reports whether
// the kill was still pending.
//
// Unlike byte-offset scripts, a scheduled kill lands at a random point
// in the victim's work — that randomness is the point: chaos tests use
// Schedule to prove recovery works wherever the kill lands, and Script
// to pin known-hard cut points exactly.
func Schedule(d time.Duration, kill func()) (cancel func() bool) {
	t := time.AfterFunc(d, kill)
	return t.Stop
}
