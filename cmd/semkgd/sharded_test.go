package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

// shardedTestServer serves the motivating example through a 2-shard
// scatter-gather engine, as `semkgd -shards 2` would.
func shardedTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	base := testEngine(t).(*core.Engine)
	se, err := core.NewShardedEngine(base, core.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(serve.New(se, serve.Config{})))
	t.Cleanup(srv.Close)
	return srv
}

// TestShardedSearchEndpoint: the HTTP surface is oblivious to sharding —
// same request, same answers as the single-engine server.
func TestShardedSearchEndpoint(t *testing.T) {
	single := searchEntities(t, testServer(t, serve.Config{}))
	sharded := searchEntities(t, shardedTestServer(t))
	if len(sharded) != len(single) {
		t.Fatalf("sharded answers %v, single %v", sharded, single)
	}
	for e := range single {
		if !sharded[e] {
			t.Fatalf("entity %q missing from sharded answers %v", e, sharded)
		}
	}
}

// TestShardedStreamEndpoint: the NDJSON stream carries per-shard progress
// attribution and ends with a result line.
func TestShardedStreamEndpoint(t *testing.T) {
	srv := shardedTestServer(t)
	resp := post(t, srv, "/v1/stream", strings.Replace(q117Body, "%s", "", 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sawShard, sawResult := false, false
	for sc.Scan() {
		ev, err := api.DecodeEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case api.EventProgress:
			if ev.Shard > 0 {
				sawShard = true
			}
		case api.EventResult:
			sawResult = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawShard {
		t.Fatal("no progress line carried a shard attribution")
	}
	if !sawResult {
		t.Fatal("stream ended without a result line")
	}
}

// TestShardedIngestReturnsBeforeRepartition is the regression test for
// the silent synchronous re-partition: an ingest against a sharded
// server must commit and answer queries BEFORE the background partition
// completes — commit latency scales with the delta, not with the graph.
// The Gate hook holds the repartition shut while we verify.
func TestShardedIngestReturnsBeforeRepartition(t *testing.T) {
	base := testEngine(t).(*core.Engine)
	initial, err := core.NewShardedEngine(base, core.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	ready := make(chan struct{})
	build := func(g2 *kg.Graph) (core.Queryer, error) {
		eng, err := testEngineBuilder(t)(g2)
		if err != nil {
			return nil, err
		}
		return core.NewResharding(eng.(*core.Engine), initial, core.ReshardConfig{
			Shard:   core.ShardConfig{Shards: 2},
			Gate:    func() { <-gate },
			OnReady: func(*core.ShardedEngine) { close(ready) },
			OnError: func(err error) { t.Errorf("background repartition failed: %v", err) },
		}), nil
	}
	srv := httptest.NewServer(newMux(serve.New(initial, serve.Config{Build: build})))
	t.Cleanup(srv.Close)

	// The ingest must return while the partition gate is still held; if a
	// rebuild repartitioned synchronously this would hang until the
	// watchdog fires.
	ingested := make(chan *http.Response, 1)
	go func() {
		ingested <- post(t, srv, "/v1/ingest",
			`{"s":"BMW_i8","p":"type","o":"Automobile"}`+"\n"+`{"s":"BMW_i8","p":"assembly","o":"Germany"}`)
	}()
	var resp *http.Response
	select {
	case resp = <-ingested:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest blocked on the background repartition")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	// The committed entity answers immediately through the interim engine,
	// and healthz reports the repartition in flight.
	if !searchEntities(t, srv)["BMW_i8"] {
		t.Fatal("ingested entity not findable while repartitioning")
	}
	health := func() map[string]any {
		hresp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h := health(); h["resharding"] != true {
		t.Fatalf("healthz while gated = %v, want resharding:true", h)
	}

	close(gate)
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("background repartition never completed")
	}
	if h := health(); h["shards"] != float64(2) {
		t.Fatalf("healthz after upgrade = %v, want 2 shards", h)
	}
	if !searchEntities(t, srv)["BMW_i8"] {
		t.Fatal("ingested entity lost across the shard upgrade")
	}
}

// TestShardedHealthz reports the shard count.
func TestShardedHealthz(t *testing.T) {
	srv := shardedTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["shards"] != float64(2) {
		t.Fatalf("healthz shards = %v, want 2", body["shards"])
	}
}
