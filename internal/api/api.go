// Package api defines the stable wire representation of queries, options,
// answers and stream events — the one JSON vocabulary shared by the
// semkgd HTTP service, the kgsearch CLI and any other client. Decoders are
// strict (unknown fields are rejected), so a typo in a query document
// fails loudly instead of silently matching nothing; field matching is
// case-insensitive per encoding/json, which keeps pre-existing documents
// with Go-style capitalized keys working.
//
// See DESIGN.md, "Wire protocol", for the full request/response and
// NDJSON event specification.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"semkg/internal/core"
	"semkg/internal/query"
)

// Duration marshals as a Go duration string ("50ms", "1.5s") and accepts
// either a duration string or a JSON number of nanoseconds.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "50ms"-style strings and integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("api: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("api: duration must be a string like %q or integer nanoseconds", "50ms")
	}
	*d = Duration(ns)
	return nil
}

// Node is the wire form of one query-graph node.
type Node struct {
	// ID names the node within the query document; edges reference it.
	ID string `json:"id"`
	// Name anchors a specific node at a knowledge-graph entity (matched
	// through the transformation library); empty marks a target
	// (variable) node whose bindings are discovered.
	Name string `json:"name,omitempty"`
	// Type constrains matches to an entity type (synonyms and
	// abbreviations included); empty accepts any type.
	Type string `json:"type,omitempty"`
}

// Edge is the wire form of one query-graph edge.
type Edge struct {
	// From references a node ID declared in the same document.
	From string `json:"from"`
	// To references a node ID declared in the same document.
	To string `json:"to"`
	// Predicate is the intended relation; the engine also follows
	// semantically similar predicates (that is the point of the paper).
	Predicate string `json:"predicate"`
}

// Query is the wire form of a query graph. Declaration order is
// semantically relevant: decomposition walks nodes and edges in order,
// and the serving layer keys its caches on the ordered document.
type Query struct {
	// Nodes declares the query's entities and variables.
	Nodes []Node `json:"nodes"`
	// Edges connects the declared nodes with predicates.
	Edges []Edge `json:"edges"`
}

// Graph converts the wire query into the engine's query graph.
func (q Query) Graph() *query.Graph {
	g := &query.Graph{
		Nodes: make([]query.Node, len(q.Nodes)),
		Edges: make([]query.Edge, len(q.Edges)),
	}
	for i, n := range q.Nodes {
		g.Nodes[i] = query.Node{ID: n.ID, Name: n.Name, Type: n.Type}
	}
	for i, e := range q.Edges {
		g.Edges[i] = query.Edge{From: e.From, To: e.To, Predicate: e.Predicate}
	}
	return g
}

// QueryFrom converts an engine query graph into its wire form.
func QueryFrom(g *query.Graph) Query {
	q := Query{
		Nodes: make([]Node, len(g.Nodes)),
		Edges: make([]Edge, len(g.Edges)),
	}
	for i, n := range g.Nodes {
		q.Nodes[i] = Node{ID: n.ID, Name: n.Name, Type: n.Type}
	}
	for i, e := range g.Edges {
		q.Edges[i] = Edge{From: e.From, To: e.To, Predicate: e.Predicate}
	}
	return q
}

// decodeStrict decodes exactly one JSON value from r into v, rejecting
// unknown fields and trailing data.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("api: trailing data after JSON document")
	}
	return nil
}

// DecodeQuery parses a query document strictly: unknown fields and
// trailing data are errors. It does not run query.Graph.Validate — the
// caller decides whether structural validation failures are fatal.
func DecodeQuery(data []byte) (*query.Graph, error) {
	var q Query
	if err := decodeStrict(bytes.NewReader(data), &q); err != nil {
		return nil, fmt.Errorf("api: parsing query: %w", err)
	}
	return q.Graph(), nil
}

// EncodeQuery renders a query graph as its canonical wire document.
func EncodeQuery(g *query.Graph) ([]byte, error) {
	return json.Marshal(QueryFrom(g))
}

// Options is the wire form of the search options. Absent fields mean the
// engine defaults; Clock and Rng have no wire form (they are process-local
// test hooks). Out-of-range values are rejected with a 400 by the service
// (core.Options.Validate), never silently clamped.
type Options struct {
	// K is the number of answers to return. 0 = default 10.
	K int `json:"k,omitempty"`
	// Tau is the path-semantic-similarity threshold τ in (0,1].
	// 0 = default 0.8.
	Tau float64 `json:"tau,omitempty"`
	// MaxHops is the path-length bound n̂ in knowledge-graph edges.
	// 0 = default 4. On a sharded server it must not exceed the shard
	// halo, or the search transparently falls back to the single engine.
	MaxHops int `json:"max_hops,omitempty"`
	// PivotNode forces the decomposition pivot to this query node ID;
	// empty lets the cost model choose.
	PivotNode string `json:"pivot,omitempty"`
	// PruneVisited enables the paper's visited-set pruning: a much
	// smaller search space, but per-entity scores may come out below the
	// true optimum. Default false (exact).
	PruneVisited bool `json:"prune_visited,omitempty"`
	// NoHeuristic disables the m(u) estimate factor (the uninformed
	// best-first ablation). Default false.
	NoHeuristic bool `json:"no_heuristic,omitempty"`
	// TimeBound, when positive, selects the response-time-bounded mode
	// with this budget (a duration string like "50ms", or integer
	// nanoseconds). 0 selects the exact mode.
	TimeBound Duration `json:"time_bound,omitempty"`
	// AlertRatio is the time-bounded mode's r% in (0,1]: searches stop
	// when the projected total time reaches TimeBound*AlertRatio.
	// 0 = default 0.8. Ignored in the exact mode.
	AlertRatio float64 `json:"alert_ratio,omitempty"`
}

// Core converts the wire options into engine options.
func (o Options) Core() core.Options {
	return core.Options{
		K:            o.K,
		Tau:          o.Tau,
		MaxHops:      o.MaxHops,
		PivotNode:    o.PivotNode,
		PruneVisited: o.PruneVisited,
		NoHeuristic:  o.NoHeuristic,
		TimeBound:    time.Duration(o.TimeBound),
		AlertRatio:   o.AlertRatio,
	}
}

// OptionsFrom converts engine options into their wire form.
func OptionsFrom(o core.Options) Options {
	return Options{
		K:            o.K,
		Tau:          o.Tau,
		MaxHops:      o.MaxHops,
		PivotNode:    o.PivotNode,
		PruneVisited: o.PruneVisited,
		NoHeuristic:  o.NoHeuristic,
		TimeBound:    Duration(o.TimeBound),
		AlertRatio:   o.AlertRatio,
	}
}

// SearchRequest is the body of the service's search endpoints.
type SearchRequest struct {
	// Query is the query graph to answer.
	Query Query `json:"query"`
	// Options tunes the search; the zero value means engine defaults.
	Options Options `json:"options"`
}

// DecodeSearchRequest parses a request body strictly and returns the
// engine-level query and options. Neither is validated here.
func DecodeSearchRequest(r io.Reader) (*query.Graph, core.Options, error) {
	var req SearchRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, core.Options{}, fmt.Errorf("api: parsing search request: %w", err)
	}
	return req.Query.Graph(), req.Options.Core(), nil
}

// PathStep is the wire form of one knowledge-graph edge of an answer path.
type PathStep struct {
	// From is the source entity name, in the edge's stored direction
	// (path search ignores direction; the rendered fact reads one way).
	From string `json:"from"`
	// Predicate is the edge's stored predicate name.
	Predicate string `json:"predicate"`
	// To is the destination entity name.
	To string `json:"to"`
}

// SubMatch is the wire form of one sub-query's matched path.
type SubMatch struct {
	// PSS is the path semantic similarity ψ in (0,1] (Eq. 6 of the
	// paper); 1 means every edge matched its query predicate exactly.
	PSS float64 `json:"pss"`
	// Steps is the matched path, one entry per knowledge-graph edge.
	Steps []PathStep `json:"steps"`
}

// Answer is the wire form of one ranked answer.
type Answer struct {
	// Entity is the pivot entity's name — the answer itself.
	Entity string `json:"entity"`
	// Score is the match score (the sum of the parts' PSS, Eq. 2);
	// answers arrive in non-increasing score order.
	Score float64 `json:"score"`
	// Bindings maps query node IDs to the entity names they matched.
	Bindings map[string]string `json:"bindings,omitempty"`
	// Parts holds one matched path per sub-query graph.
	Parts []SubMatch `json:"parts,omitempty"`
}

// AnswerFrom converts an engine answer into its wire form.
func AnswerFrom(a core.Answer) Answer {
	out := Answer{Entity: a.PivotName, Score: a.Score, Bindings: a.Bindings}
	for _, p := range a.Parts {
		sm := SubMatch{PSS: p.PSS, Steps: make([]PathStep, len(p.Steps))}
		for i, st := range p.Steps {
			sm.Steps[i] = PathStep{From: st.FromName, Predicate: st.Predicate, To: st.ToName}
		}
		out.Parts = append(out.Parts, sm)
	}
	return out
}

// AnswersFrom converts a ranked answer slice into its wire form.
func AnswersFrom(answers []core.Answer) []Answer {
	out := make([]Answer, len(answers))
	for i, a := range answers {
		out[i] = AnswerFrom(a)
	}
	return out
}

// Result is the wire form of a search outcome.
type Result struct {
	// Answers is the ranked top-k (possibly fewer, possibly empty when a
	// query node matches nothing).
	Answers []Answer `json:"answers"`
	// Pivot is the query node the decomposition joined the answers at.
	Pivot string `json:"pivot,omitempty"`
	// Approximate is true when the time bound stopped the search before
	// exhaustion: the answers may differ from the exact top-k, and more
	// budget refines them (Theorem 4).
	Approximate bool `json:"approximate,omitempty"`
	// Elapsed is the engine-side pipeline duration (a Go duration
	// string); queue and network time are not included.
	Elapsed Duration `json:"elapsed"`
	// Collected is |M̂_i| per sub-query (time-bounded mode only).
	Collected []int `json:"collected,omitempty"`
}

// ResultFrom converts an engine result into its wire form.
func ResultFrom(r *core.Result) Result {
	out := Result{
		Answers:     AnswersFrom(r.Answers),
		Approximate: r.Approximate,
		Elapsed:     Duration(r.Elapsed),
		Collected:   r.Collected,
	}
	if r.Decomposition != nil {
		out.Pivot = r.Decomposition.Pivot
	}
	return out
}
