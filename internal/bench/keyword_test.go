package bench

import "testing"

// TestRunKeywordShape runs the keyword experiment end to end (short
// iteration counts) and checks the acceptance properties: three
// workloads with positive latency measurements, assembly latency and
// candidate counts reported for the blended path, and blended recall at
// least matching the single-candidate path (blending can only add
// answers). Skipped in -short mode (the environment trains an
// embedding).
func TestRunKeywordShape(t *testing.T) {
	env := testEnv(t)
	res, err := RunKeyword(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("keyword rows = %d, want 3", len(res.Rows))
	}
	byName := map[string]KeywordRow{}
	for _, row := range res.Rows {
		byName[row.Workload] = row
		if row.P50Us <= 0 || row.P95Us <= 0 || row.Queries <= 0 {
			t.Errorf("%s: non-positive measurements: %+v", row.Workload, row)
		}
	}
	blended, ok := byName["keyword-blended"]
	if !ok {
		t.Fatal("missing keyword-blended workload")
	}
	if blended.AssemblyP50Us <= 0 || blended.AssemblyP95Us < blended.AssemblyP50Us {
		t.Errorf("assembly percentiles off: %+v", blended)
	}
	if blended.CandidatesMean < 1 || blended.ExecutedMean < 1 {
		t.Errorf("candidate counts off: %+v", blended)
	}
	single, ok := byName["keyword-single"]
	if !ok {
		t.Fatal("missing keyword-single workload")
	}
	if blended.Recall < single.Recall {
		t.Errorf("blended recall %.2f below single-candidate recall %.2f",
			blended.Recall, single.Recall)
	}
	if _, ok := byName["structured"]; !ok {
		t.Fatal("missing structured workload")
	}
	if blended.Recall <= 0 {
		t.Errorf("blended keyword search recovered nothing: %+v", blended)
	}
}
