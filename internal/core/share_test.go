package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"semkg/internal/astar"
	"semkg/internal/query"
)

// sharedSourcesFor builds one SharedSearch per sub-query of p.
func sharedSourcesFor(t *testing.T, e *Engine, p *Plan) []SubSource {
	t.Helper()
	sources := make([]SubSource, p.Subqueries())
	for i := range sources {
		ss, err := e.NewSubSearch(p, i)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = ss
	}
	return sources
}

// TestSearchPlanSharedEquivalence: a plan run through shared sub-query
// enumerations — repeatedly, and under different runtime K — returns
// answers field-identical to the private-searcher run. This is the core
// invisibility property the serving layer's sub-cache depends on.
func TestSearchPlanSharedEquivalence(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	q := q117("assembly")
	opts := Options{K: 10, Tau: 0.6}

	p, err := e.Compile(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	sources := sharedSourcesFor(t, e, p)

	for _, k := range []int{1, 2, 3, 10} {
		o := opts
		o.K = k
		want, err := e.SearchPlan(ctx, p, o)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			got, err := e.SearchPlanShared(ctx, p, o, sources)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Answers, want.Answers) {
				t.Fatalf("K=%d run %d: shared answers differ:\n%v\nvs\n%v",
					k, run, got.Answers, want.Answers)
			}
		}
	}

	// The shared enumerations did the A* work; their stats are reported.
	res, err := e.SearchPlanShared(ctx, p, opts, sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SearchStats) != p.Subqueries() {
		t.Fatalf("SearchStats: got %d entries, want %d", len(res.SearchStats), p.Subqueries())
	}
	for i, st := range res.SearchStats {
		if st.Emitted == 0 {
			t.Errorf("sub %d: shared stats report no emitted matches", i)
		}
	}
}

// TestStreamPlanSharedEvents: the shared run's event stream carries the
// same terminal ranking and bounds as the private run.
func TestStreamPlanSharedEvents(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	q := q117("assembly")
	opts := Options{K: 4, Tau: 0.6}

	p, err := e.Compile(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	sources := sharedSourcesFor(t, e, p)

	closing := func(s *Stream) (TopKEvent, *Result) {
		t.Helper()
		var last TopKEvent
		var res *Result
		for ev := range s.Events() {
			switch v := ev.(type) {
			case TopKEvent:
				last = v
			case ResultEvent:
				res = v.Result
			}
		}
		return last, res
	}

	sPriv, err := e.StreamPlan(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantTop, wantRes := closing(sPriv)

	sShared, err := e.StreamPlanShared(ctx, p, opts, sources)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, gotRes := closing(sShared)

	if !reflect.DeepEqual(gotRes.Answers, wantRes.Answers) {
		t.Fatalf("shared stream answers differ:\n%v\nvs\n%v", gotRes.Answers, wantRes.Answers)
	}
	if gotTop.LowerK != wantTop.LowerK || gotTop.UpperMax != wantTop.UpperMax {
		t.Fatalf("closing bounds differ: shared (%g, %g) vs private (%g, %g)",
			gotTop.LowerK, gotTop.UpperMax, wantTop.LowerK, wantTop.UpperMax)
	}
	if !reflect.DeepEqual(gotTop.Answers, wantTop.Answers) {
		t.Fatalf("closing top-k differs:\n%v\nvs\n%v", gotTop.Answers, wantTop.Answers)
	}
}

// TestSharedSearchConcurrentCursors: many cursors racing over one shared
// enumeration each observe the exact sequence a private searcher yields.
// Run under -race this also checks the extension locking.
func TestSharedSearchConcurrentCursors(t *testing.T) {
	e := newTestEngine(t)
	q := q117("assembly")
	p, err := e.Compile(q, Options{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}

	// Reference sequence from a private searcher.
	priv, err := e.subSearcher(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []astar.Match
	for {
		m, ok := priv.Next()
		if !ok {
			break
		}
		want = append(want, m)
	}
	if len(want) == 0 {
		t.Fatal("reference enumeration is empty")
	}

	ss, err := e.NewSubSearch(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 8
	got := make([][]astar.Match, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cur := ss.Cursor()
			for {
				m, ok := cur.Next()
				if !ok {
					return
				}
				got[r] = append(got[r], m)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < readers; r++ {
		if !reflect.DeepEqual(got[r], want) {
			t.Fatalf("reader %d: shared sequence differs from private enumeration", r)
		}
	}
	if ss.Memoized() != len(want) {
		t.Fatalf("memoized %d matches, want %d", ss.Memoized(), len(want))
	}
}

// TestSharedSearchPartialConsumerLeavesPrefix: a consumer that abandons
// the enumeration early does not disturb later consumers — the memoized
// prefix keeps serving the identical sequence (the cancellation-safety
// behind satellite "a leaver never cancels a sub-flight others need").
func TestSharedSearchPartialConsumerLeavesPrefix(t *testing.T) {
	e := newTestEngine(t)
	p, err := e.Compile(q117("assembly"), Options{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := e.NewSubSearch(p, 0)
	if err != nil {
		t.Fatal(err)
	}

	// First consumer reads two matches and walks away.
	cur := ss.Cursor()
	for i := 0; i < 2; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatalf("enumeration ended before match %d", i)
		}
	}
	memo := ss.Memoized()

	// Second consumer still sees the full reference sequence.
	priv, err := e.subSearcher(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur2 := ss.Cursor()
	n := 0
	for {
		wm, wok := priv.Next()
		gm, gok := cur2.Next()
		if wok != gok {
			t.Fatalf("match %d: shared ok=%v, private ok=%v", n, gok, wok)
		}
		if !wok {
			break
		}
		if !reflect.DeepEqual(gm, wm) {
			t.Fatalf("match %d differs after partial consumer", n)
		}
		n++
	}
	if n < memo {
		t.Fatalf("full read yielded %d matches, fewer than the %d memoized", n, memo)
	}
}

// TestSubqueryKeyStability: recompiling the same query yields identical
// keys; changing the query shape or a search-relevant option changes them.
func TestSubqueryKeyStability(t *testing.T) {
	e := newTestEngine(t)
	opts := Options{Tau: 0.6}
	p1, err := e.Compile(q117("assembly"), opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Compile(q117("assembly"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Subqueries() != p2.Subqueries() {
		t.Fatalf("sub-query counts differ: %d vs %d", p1.Subqueries(), p2.Subqueries())
	}
	for i := 0; i < p1.Subqueries(); i++ {
		if p1.SubqueryKey(i) != p2.SubqueryKey(i) {
			t.Errorf("sub %d: key unstable across identical compiles", i)
		}
	}

	// A different predicate changes the blueprint and the key.
	p3, err := e.Compile(q117("manufacturer"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.SubqueryKey(0) == p3.SubqueryKey(0) {
		t.Error("different predicates share a sub-query key")
	}

	// A different tau changes the enumeration (pruning) and the key.
	p4, err := e.Compile(q117("assembly"), Options{Tau: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if p1.SubqueryKey(0) == p4.SubqueryKey(0) {
		t.Error("different tau shares a sub-query key")
	}

	// K is runtime-only: it must not influence the key.
	p5, err := e.Compile(q117("assembly"), Options{Tau: 0.6, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p1.SubqueryKey(0) != p5.SubqueryKey(0) {
		t.Error("runtime K changed the sub-query key")
	}
}

// TestCompileBatch: positional results, per-spec errors, and plans that
// behave identically to individually compiled ones.
func TestCompileBatch(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	good := q117("assembly")
	bad := &query.Graph{Nodes: []query.Node{{ID: "v1"}}} // invalid: empty name and type

	plans, errs := e.CompileBatch([]BatchSpec{
		{Query: good, Opts: Options{Tau: 0.6}},
		{Query: bad, Opts: Options{Tau: 0.6}},
		{Query: good, Opts: Options{Tau: 0.75}},
	})
	if len(plans) != 3 || len(errs) != 3 {
		t.Fatalf("positional results: %d plans, %d errs", len(plans), len(errs))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good specs failed: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("invalid spec compiled without error")
	}
	var br BadRequestError
	if !errors.As(errs[1], &br) {
		t.Fatalf("invalid spec error = %v, want BadRequestError", errs[1])
	}

	// Batch-compiled plans run like individually compiled ones.
	solo, err := e.Search(ctx, good, Options{Tau: 0.6, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SearchPlan(ctx, plans[0], Options{Tau: 0.6, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers, solo.Answers) {
		t.Fatalf("batch-compiled plan answers differ:\n%v\nvs\n%v", got.Answers, solo.Answers)
	}
}

// TestSharedRejections: the sharing entry points reject time-bounded
// runs, source-count mismatches, and foreign plans.
func TestSharedRejections(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	p, err := e.Compile(q117("assembly"), Options{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	sources := sharedSourcesFor(t, e, p)

	var br BadRequestError
	_, err = e.SearchPlanShared(ctx, p, Options{Tau: 0.6, TimeBound: 1}, sources)
	if err == nil || !errors.As(err, &br) {
		t.Fatalf("TimeBound accepted by shared run: err = %v", err)
	}

	if _, err := e.SearchPlanShared(ctx, p, Options{Tau: 0.6}, sources[:1]); err == nil && p.Subqueries() != 1 {
		t.Fatal("source-count mismatch accepted")
	}

	other := newTestEngine(t)
	if _, err := other.SearchPlanShared(ctx, p, Options{Tau: 0.6}, sources); err == nil {
		t.Fatal("foreign plan accepted by shared run")
	}
	if _, err := other.NewSubSearch(p, 0); err == nil {
		t.Fatal("foreign plan accepted by NewSubSearch")
	}
	if _, err := e.NewSubSearch(p, p.Subqueries()); err == nil {
		t.Fatal("out-of-range sub-query index accepted")
	}
}
