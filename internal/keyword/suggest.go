package keyword

import (
	"sort"
	"time"

	"semkg/internal/kg"
	"semkg/internal/strutil"
)

// Suggestion is one autocomplete completion: a graph element the typed
// fragment resolves to through the exact/prefix/initials indexes.
type Suggestion struct {
	// Text is the graph's spelling of the element.
	Text string
	// Kind is the element kind (entity, type, predicate).
	Kind Kind
	// Via is the index path that produced the completion.
	Via Via
	// Count is the element's mass (nodes with the name, type cardinality,
	// or predicate edge count).
	Count int
	// Score is the match quality the keyword matcher assigns.
	Score float64
}

// Suggestions is an autocomplete response.
type Suggestions struct {
	// Query echoes the input fragment.
	Query string
	// Items are the completions, best first.
	Items []Suggestion
	// Generation is the engine generation answered from.
	Generation uint64
	// Elapsed is the lookup time.
	Elapsed time.Duration
}

// DefaultSuggestLimit caps completions when the caller passes limit <= 0.
const DefaultSuggestLimit = 10

// Suggest completes the fragment q against g's name indexes — pure index
// probes plus a scan of the small predicate vocabulary, never a search.
// Completions rank by match quality, then popularity (larger Count
// first), then text.
func Suggest(g *kg.Graph, q string, limit int) []Suggestion {
	if limit <= 0 {
		limit = DefaultSuggestLimit
	}
	norm := strutil.Normalize(q)
	if norm == "" {
		return nil
	}
	interps := matchKeyword(g, norm, 4*limit)
	out := make([]Suggestion, 0, len(interps))
	seen := make(map[string]bool, len(interps))
	for _, it := range interps {
		id := string(it.Kind) + "\x00" + it.Name
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, Suggestion{Text: it.Name, Kind: it.Kind, Via: it.Via, Count: it.Count, Score: it.Quality})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Text < out[j].Text
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Suggest answers autocomplete from the served graph's indexes. It never
// assembles or executes a query.
func (f *Frontend) Suggest(q string, limit int) *Suggestions {
	start := time.Now()
	eng, gen := f.srv.Current()
	items := Suggest(eng.Graph(), q, limit)
	f.suggests.Add(1)
	return &Suggestions{Query: q, Items: items, Generation: gen, Elapsed: time.Since(start)}
}
