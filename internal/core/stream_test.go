package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"semkg/internal/astar"
	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/ta"
	"semkg/internal/tbq"
)

// seedSearch replicates the pre-streaming (PR-1) batch pipeline verbatim:
// decompose, compile, prefetch-k + TA assembly (exact) or tbq.Run (time
// bounded), render. The equivalence property below checks that the
// streaming pipeline — and batch Search, now a thin consumer of it —
// still produces byte-identical results.
func seedSearch(e *Engine, ctx context.Context, q *query.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.TimeBound > 0 {
		e.perMatchCost()
	}
	memo := e.matcher.Memo()
	d, err := e.decompose(q, opts, memo)
	if err != nil {
		return nil, err
	}
	subs, compiled, err := e.compileSubs(q, d, memo)
	if err != nil {
		return nil, err
	}
	sopts := astar.Options{
		Tau:          opts.Tau,
		MaxHops:      opts.MaxHops,
		NoHeuristic:  opts.NoHeuristic,
		PruneVisited: opts.PruneVisited,
	}
	searchers := make([]*astar.Searcher, 0, len(subs))
	for _, ps := range subs {
		w, err := semgraph.NewWeighterCached(e.rows, ps.preds)
		if err != nil {
			return nil, err
		}
		searchers = append(searchers, astar.NewSearcher(e.g, w, ps.sub, sopts))
	}
	res := &Result{Decomposition: d}
	if !compiled {
		return res, nil
	}
	var finals []ta.Final
	if opts.TimeBound > 0 {
		cfg := tbq.Config{
			Bound:      opts.TimeBound,
			AlertRatio: opts.AlertRatio,
			PerMatchTA: e.perMatchCost(),
			Clock:      opts.Clock,
		}
		out := tbq.Run(ctx, searchers, opts.K, cfg)
		finals = out.Finals
		res.Approximate = !out.Exhausted
		res.Collected = out.Collected
	} else {
		prefetched := make([][]astar.Match, len(searchers))
		var wg sync.WaitGroup
		for i, s := range searchers {
			wg.Add(1)
			go func(i int, s *astar.Searcher) {
				defer wg.Done()
				for len(prefetched[i]) < opts.K && ctx.Err() == nil {
					m, ok := s.Next()
					if !ok {
						break
					}
					prefetched[i] = append(prefetched[i], m)
				}
			}(i, s)
		}
		wg.Wait()
		streams := make([]ta.Stream, len(searchers))
		for i := range searchers {
			streams[i] = &resumeStream{ctx: ctx, buf: prefetched[i], search: searchers[i]}
		}
		finals, _ = ta.Assemble(streams, opts.K)
	}
	for _, s := range searchers {
		res.SearchStats = append(res.SearchStats, s.Stats())
	}
	res.Answers = e.renderAnswers(finals, d)
	return res, nil
}

// tinyWorld generates a small deterministic benchmark world with a random
// — but deterministic per seed — predicate space (no training: the
// equivalence property is about pipelines, not embedding quality).
func tinyWorld(t *testing.T, seed int64) (*datagen.Dataset, *Engine) {
	t.Helper()
	ds := datagen.Generate(datagen.Profile{
		Name: "tiny", Seed: seed,
		Countries: 4, CitiesPerCtr: 2, Companies: 12, Autos: 70,
		People: 24, Engines: 12, Clubs: 6, FillerTypes: 2, FillerPerType: 3,
	})
	rng := rand.New(rand.NewSource(seed * 31))
	names := ds.Graph.Predicates()
	vecs := make([]embed.Vector, len(names))
	for i := range vecs {
		v := make(embed.Vector, 8)
		for j := range v {
			v[j] = 0.1 + 0.9*rng.Float64() // positive: cosine weights stay in (0,1]
		}
		vecs[i] = v
	}
	sp, err := embed.NewSpace(names, vecs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds.Graph, sp, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	return ds, e
}

// assertResultsEqual compares everything except Elapsed (wall time).
func assertResultsEqual(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Answers, want.Answers) {
		t.Errorf("%s: answers differ:\n got %+v\nwant %+v", name, got.Answers, want.Answers)
	}
	if got.Approximate != want.Approximate {
		t.Errorf("%s: approximate %v vs %v", name, got.Approximate, want.Approximate)
	}
	if !reflect.DeepEqual(got.Collected, want.Collected) {
		t.Errorf("%s: collected %v vs %v", name, got.Collected, want.Collected)
	}
	if !reflect.DeepEqual(got.SearchStats, want.SearchStats) {
		t.Errorf("%s: search stats %+v vs %+v", name, got.SearchStats, want.SearchStats)
	}
	if got.Decomposition.Pivot != want.Decomposition.Pivot {
		t.Errorf("%s: pivot %q vs %q", name, got.Decomposition.Pivot, want.Decomposition.Pivot)
	}
}

// drainStream consumes a stream to completion, returning the events in
// order and the terminal result.
func drainStream(t *testing.T, s *Stream) ([]Event, *Result) {
	t.Helper()
	var events []Event
	for ev := range s.Events() {
		events = append(events, ev)
	}
	return events, s.Result()
}

// TestStreamBatchEquivalenceSGQ is the property test of the acceptance
// criteria: on generated worlds, consuming a Stream to completion yields
// answers identical to batch Search, and both match the seed pipeline.
func TestStreamBatchEquivalenceSGQ(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 17, 42} {
		ds, e := tinyWorld(t, seed)
		queries := ds.Simple
		if len(ds.Medium) > 0 {
			queries = append(append([]datagen.GenQuery{}, queries...), ds.Medium[0])
		}
		if len(ds.Complex) > 0 {
			queries = append(queries, ds.Complex[0])
		}
		if len(queries) > 5 {
			queries = queries[:5]
		}
		for _, q := range queries {
			opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
			want, err := seedSearch(e, ctx, q.Graph, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, q.Name, err)
			}
			got, err := e.Search(ctx, q.Graph, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, q.Name, err)
			}
			assertResultsEqual(t, q.Name+"/batch", got, want)

			st, err := e.Stream(ctx, q.Graph, opts)
			if err != nil {
				t.Fatal(err)
			}
			events, res := drainStream(t, st)
			assertResultsEqual(t, q.Name+"/stream", res, want)
			checkEventOrdering(t, q.Name, events, res)
		}
	}
}

// TestStreamBatchEquivalenceTBQ covers the time-bounded mode: an ample
// deterministic budget (exhaustive, exact) on multi-sub-query graphs, and
// a tight budget (approximate) on single-sub-query graphs, where the
// shared StepClock makes the collection deterministic.
func TestStreamBatchEquivalenceTBQ(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 8)
	run := func(name string, q *query.Graph, opts Options, clock func() tbq.Clock) {
		o1 := opts
		o1.Clock = clock()
		want, err := seedSearch(e, ctx, q, o1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o2 := opts
		o2.Clock = clock()
		got, err := e.Search(ctx, q, o2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertResultsEqual(t, name+"/batch", got, want)

		o3 := opts
		o3.Clock = clock()
		st, err := e.Stream(ctx, q, o3)
		if err != nil {
			t.Fatal(err)
		}
		events, res := drainStream(t, st)
		assertResultsEqual(t, name+"/stream", res, want)
		checkEventOrdering(t, name, events, res)
	}

	// Ample budget: every eager search exhausts, so the interleaving of
	// clock observations across sub-query goroutines cannot change M̂_i.
	ample := Options{K: 5, Tau: 0.5, MaxHops: 3, TimeBound: time.Hour}
	for _, q := range []datagen.GenQuery{ds.Simple[0], ds.Medium[0]} {
		run(q.Name+"/ample", q.Graph, ample, func() tbq.Clock {
			return &tbq.StepClock{Step: time.Microsecond}
		})
	}

	// Tight budget on single-sub-query (Complexity 1) graphs: one search
	// goroutine, so the StepClock observation sequence is deterministic.
	tight := Options{K: 5, Tau: 0.5, MaxHops: 3, TimeBound: 200 * time.Microsecond}
	for _, q := range ds.Simple[:2] {
		if q.Complexity != 1 {
			continue
		}
		run(q.Name+"/tight", q.Graph, tight, func() tbq.Clock {
			return &tbq.StepClock{Step: 10 * time.Microsecond}
		})
	}
}

// checkEventOrdering asserts the stream's documented ordering guarantees:
// exactly one terminal ResultEvent at the end, assemble phase after
// search phase, monotone topk rounds with the last snapshot equal to the
// final ranking.
func checkEventOrdering(t *testing.T, name string, events []Event, res *Result) {
	t.Helper()
	if len(events) == 0 {
		t.Fatalf("%s: no events", name)
	}
	last := events[len(events)-1]
	re, ok := last.(ResultEvent)
	if !ok {
		t.Fatalf("%s: last event is %T, want ResultEvent", name, last)
	}
	if re.Result != res {
		t.Errorf("%s: terminal event result != Stream.Result()", name)
	}
	sawSearch, sawAssemble := false, false
	lastRound := 0
	var lastTopK *TopKEvent
	for i, ev := range events {
		switch e := ev.(type) {
		case ResultEvent:
			if i != len(events)-1 {
				t.Errorf("%s: ResultEvent at %d is not last", name, i)
			}
		case PhaseEvent:
			switch e.Phase {
			case PhaseSearch:
				sawSearch = true
			case PhaseAssemble:
				if !sawSearch {
					t.Errorf("%s: assemble phase before search phase", name)
				}
				sawAssemble = true
			case PhaseAlert:
				if !sawSearch {
					t.Errorf("%s: alert phase before search phase", name)
				}
			}
		case TopKEvent:
			if e.Round < lastRound {
				t.Errorf("%s: topk round went backwards (%d after %d)", name, e.Round, lastRound)
			}
			lastRound = e.Round
			cp := e
			lastTopK = &cp
		case ProgressEvent:
			if e.Sub < 0 || len(res.SearchStats) > 0 && e.Sub >= len(res.SearchStats) {
				t.Errorf("%s: progress for out-of-range sub %d", name, e.Sub)
			}
		}
	}
	if len(res.Answers) > 0 {
		if !sawAssemble {
			t.Errorf("%s: answers produced without an assemble phase event", name)
		}
		if lastTopK == nil {
			t.Fatalf("%s: no provisional topk event before terminal result", name)
		}
		if !reflect.DeepEqual(lastTopK.Answers, res.Answers) {
			t.Errorf("%s: last topk != final answers:\n got %+v\nwant %+v",
				name, lastTopK.Answers, res.Answers)
		}
	}
}

// TestStreamTBQSubDone: time-bounded streams report the end of each
// sub-query's eager search with a Done-flagged progress event.
func TestStreamTBQSubDone(t *testing.T) {
	e := newTestEngine(t)
	st, err := e.Stream(context.Background(), q117("assembly"), Options{
		K: 10, Tau: 0.75, MaxHops: 4,
		TimeBound: 5 * time.Second,
		Clock:     &tbq.StepClock{Step: 10 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	events, res := drainStream(t, st)
	doneSubs := make(map[int]bool)
	for _, ev := range events {
		if p, ok := ev.(ProgressEvent); ok && p.Done {
			doneSubs[p.Sub] = true
		}
	}
	for i := range res.SearchStats {
		if !doneSubs[i] {
			t.Errorf("sub %d never reported Done (events: %d)", i, len(events))
		}
	}
}

// TestStreamCancelledContext: cancellation is anytime behaviour — the
// stream still terminates with a result.
func TestStreamCancelledContext(t *testing.T) {
	e := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := e.Stream(ctx, q117("assembly"), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	events, res := drainStream(t, st)
	if res == nil {
		t.Fatal("cancelled stream must still produce a terminal result")
	}
	if _, ok := events[len(events)-1].(ResultEvent); !ok {
		t.Fatal("cancelled stream must end with a ResultEvent")
	}
}

// TestStreamResultWithoutDraining: Result must not deadlock when the
// caller never reads the events channel.
func TestStreamResultWithoutDraining(t *testing.T) {
	e := newTestEngine(t)
	st, err := e.Stream(context.Background(), q117("assembly"), Options{K: 10, Tau: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() { done <- st.Result() }()
	select {
	case res := <-done:
		if len(res.Answers) == 0 {
			t.Error("expected answers")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Result deadlocked without an event consumer")
	}
}

// TestStreamInvalidOptions: Validate runs before the pipeline starts.
func TestStreamInvalidOptions(t *testing.T) {
	e := newTestEngine(t)
	bad := []Options{
		{K: -1},
		{Tau: 1.5},
		{Tau: -0.1},
		{MaxHops: -2},
		{TimeBound: -time.Second},
		{AlertRatio: 2},
	}
	for _, opts := range bad {
		if _, err := e.Stream(context.Background(), q117("assembly"), opts); err == nil {
			t.Errorf("Stream accepted invalid options %+v", opts)
		}
		if _, err := e.Search(context.Background(), q117("assembly"), opts); err == nil {
			t.Errorf("Search accepted invalid options %+v", opts)
		}
	}
	// Zero values remain valid (defaults).
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options should validate: %v", err)
	}
}
