// Command kgsearch answers query graphs over a knowledge graph with the
// semantic-guided (SGQ) or time-bounded (TBQ) search, either locally or
// against a running semkgd server.
//
// Single-edge queries come from flags:
//
//	kgsearch -graph g.tsv -model m.bin -type Automobile -entity Germany -pred assembly -k 10
//
// General query graphs come from a JSON file (the api.Query wire shape,
// the same document semkgd accepts; unknown fields are rejected):
//
//	kgsearch -graph g.tsv -model m.bin -queryfile q.json -k 10 -bound 50ms
//
// Client mode sends the query to a semkgd server instead of loading the
// graph locally, streaming NDJSON events and printing provisional top-k
// updates as they arrive:
//
//	kgsearch -server http://localhost:8375 -queryfile q.json -bound 50ms
//
// Keyword mode skips the query document entirely: bare keywords are
// assembled into candidate query graphs, executed, and blended into one
// ranking. Works locally and against a server:
//
//	kgsearch -graph g.tsv -model m.bin -keywords "automobile assembly germany"
//	kgsearch -server http://localhost:8375 -keywords "design engine italy" -candidates 3
//
// Batch mode answers a whole group of queries in one call from an
// api.BatchRequest JSON file (the same document POST /v1/batch accepts),
// sharing compilation and overlapping sub-query searches across the
// group:
//
//	kgsearch -graph g.tsv -model m.bin -batchfile b.json
//	kgsearch -server http://localhost:8375 -batchfile b.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/keyword"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/serve"
)

func main() {
	graphFile := flag.String("graph", "", "triple file (local mode)")
	modelFile := flag.String("model", "", "embedding model file (local mode)")
	server := flag.String("server", "", "semkgd base URL (client mode, e.g. http://localhost:8375)")
	queryFile := flag.String("queryfile", "", "JSON query graph file")
	batchFile := flag.String("batchfile", "", "JSON batch request file (a group of queries answered in one call)")
	keywords := flag.String("keywords", "", "bare keyword query (keyword mode; replaces -queryfile/-type/-entity/-pred)")
	candidates := flag.Int("candidates", 0, "max assembled candidate queries to execute (keyword mode; 0 = default)")
	focusType := flag.String("type", "", "focus entity type (single-edge query)")
	entity := flag.String("entity", "", "anchor entity name (single-edge query)")
	pred := flag.String("pred", "", "query predicate (single-edge query)")
	k := flag.Int("k", 10, "number of answers")
	tau := flag.Float64("tau", 0.6, "pss threshold τ")
	maxHops := flag.Int("nhat", 4, "desired path length n̂")
	bound := flag.Duration("bound", 0, "response time bound (0 = exact SGQ)")
	retries := flag.Int("retries", 4, "max retries when the server sheds with 429 (client mode; 0 = fail immediately)")
	flag.Parse()

	opts := core.Options{K: *k, Tau: *tau, MaxHops: *maxHops, TimeBound: *bound}

	if *batchFile != "" {
		if *server != "" {
			if err := remoteBatch(*server, *batchFile, opts, defaultRetryPolicy(*retries)); err != nil {
				fail(err)
			}
			return
		}
		if *graphFile == "" || *modelFile == "" {
			fmt.Fprintln(os.Stderr, "kgsearch: -batchfile needs -graph and -model (or -server)")
			os.Exit(2)
		}
		if err := localBatch(*graphFile, *modelFile, *batchFile, opts); err != nil {
			fail(err)
		}
		return
	}

	if *keywords != "" {
		if *server != "" {
			if err := remoteKeyword(*server, *keywords, opts, *candidates, defaultRetryPolicy(*retries)); err != nil {
				fail(err)
			}
			return
		}
		if *graphFile == "" || *modelFile == "" {
			fmt.Fprintln(os.Stderr, "kgsearch: -keywords needs -graph and -model (or -server)")
			os.Exit(2)
		}
		if err := localKeyword(*graphFile, *modelFile, *keywords, opts, *candidates); err != nil {
			fail(err)
		}
		return
	}

	q, err := buildQuery(*queryFile, *focusType, *entity, *pred)
	if err != nil {
		fail(err)
	}

	if *server != "" {
		if err := remoteSearch(*server, q, opts, defaultRetryPolicy(*retries)); err != nil {
			fail(err)
		}
		return
	}

	if *graphFile == "" || *modelFile == "" {
		fmt.Fprintln(os.Stderr, "kgsearch: -graph and -model are required (or use -server)")
		os.Exit(2)
	}
	g := loadGraph(*graphFile)
	model := loadModel(*modelFile)
	space, err := model.Space(g)
	if err != nil {
		fail(err)
	}
	engine, err := core.NewEngine(g, space, nil)
	if err != nil {
		fail(err)
	}
	res, err := engine.Search(context.Background(), q, opts)
	if err != nil {
		fail(err)
	}
	printResult(api.ResultFrom(res), *bound)
}

// buildQuery assembles the query graph from -queryfile (the strict api
// wire codec — the identical document semkgd accepts) or the single-edge
// flags.
func buildQuery(queryFile, focusType, entity, pred string) (*query.Graph, error) {
	switch {
	case queryFile != "":
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return nil, err
		}
		return api.DecodeQuery(data)
	case focusType != "" && entity != "" && pred != "":
		return &query.Graph{
			Nodes: []query.Node{
				{ID: "v1", Type: focusType},
				{ID: "v2", Name: entity},
			},
			Edges: []query.Edge{{From: "v1", To: "v2", Predicate: pred}},
		}, nil
	default:
		fmt.Fprintln(os.Stderr, "kgsearch: provide -queryfile or -type/-entity/-pred")
		os.Exit(2)
		panic("unreachable")
	}
}

// remoteSearch streams the query through semkgd's /v1/stream endpoint,
// narrating progress to stderr and printing the final result like the
// local mode. A 429 shed is retried with capped exponential backoff,
// honoring the server's Retry-After floor; each attempt posts a fresh
// body (the previous attempt consumed its reader).
func remoteSearch(base string, q *query.Graph, opts core.Options, policy retryPolicy) error {
	body, err := json.Marshal(api.SearchRequest{
		Query:   api.QueryFrom(q),
		Options: api.OptionsFrom(opts),
	})
	if err != nil {
		return err
	}
	if policy.notify == nil {
		policy.notify = func(attempt int, wait time.Duration, status string) {
			fmt.Fprintln(os.Stderr, describeShed(attempt, wait, status))
		}
	}
	resp, err := policy.do(func() (*http.Response, error) {
		return http.Post(base+"/v1/stream", "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var final *api.Result
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := api.DecodeEvent(line)
		if err != nil {
			return err
		}
		switch ev.Event {
		case api.EventPhase:
			fmt.Fprintf(os.Stderr, "· phase %s\n", ev.Phase)
		case api.EventTopK:
			fmt.Fprintf(os.Stderr, "· provisional top-k: %d answer(s), L_k=%.3f U_max=%.3f (round %d)\n",
				len(ev.Answers), ev.LowerK, ev.UpperMax, ev.Round)
		case api.EventResult:
			final = ev.Result
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if final == nil {
		return fmt.Errorf("stream ended without a result event")
	}
	printResult(*final, opts.TimeBound)
	return nil
}

// localKeyword runs keyword search entirely in process: the engine is
// wrapped in a single-replica serving layer so the keyword front end gets
// the same caching/admission path the server uses.
func localKeyword(graphFile, modelFile, input string, opts core.Options, candidates int) error {
	g := loadGraph(graphFile)
	model := loadModel(modelFile)
	space, err := model.Space(g)
	if err != nil {
		return err
	}
	engine, err := core.NewEngine(g, space, nil)
	if err != nil {
		return err
	}
	fe := keyword.New(serve.New(engine, serve.Config{}), keyword.Config{})
	res, err := fe.Search(context.Background(), input, opts, candidates)
	if err != nil {
		return err
	}
	printKeyword(keyword.WireResult(res))
	return nil
}

// remoteKeyword streams bare keywords through semkgd's /v1/keyword
// endpoint, narrating assembly and per-candidate progress to stderr and
// printing the blended result. Sheds retry like remoteSearch.
func remoteKeyword(base, input string, opts core.Options, candidates int, policy retryPolicy) error {
	body, err := json.Marshal(api.KeywordRequest{
		Keywords:      input,
		Options:       api.OptionsFrom(opts),
		MaxCandidates: candidates,
	})
	if err != nil {
		return err
	}
	if policy.notify == nil {
		policy.notify = func(attempt int, wait time.Duration, status string) {
			fmt.Fprintln(os.Stderr, describeShed(attempt, wait, status))
		}
	}
	resp, err := policy.do(func() (*http.Response, error) {
		return http.Post(base+"/v1/keyword?stream=1", "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var final *api.KeywordResult
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := api.DecodeKeywordEvent(line)
		if err != nil {
			return err
		}
		switch ev.Event {
		case api.KeywordEventAssembly:
			fmt.Fprintf(os.Stderr, "· assembled %d candidate(s) from %v, executing %d\n",
				len(ev.Candidates), ev.Keywords, ev.Executed)
		case api.KeywordEventEngine:
			if ev.Inner != nil && ev.Inner.Event == api.EventTopK {
				fmt.Fprintf(os.Stderr, "· candidate %d provisional top-k: %d answer(s)\n",
					*ev.Candidate, len(ev.Inner.Answers))
			}
		case api.KeywordEventResult:
			final = ev.Result
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if final == nil {
		return fmt.Errorf("stream ended without a result event")
	}
	printKeyword(*final)
	return nil
}

func printKeyword(res api.KeywordResult) {
	fmt.Printf("keyword search answered in %s — %d candidate(s), %d executed, %d answer(s)\n",
		time.Duration(res.Elapsed).Round(time.Microsecond),
		len(res.Candidates), res.Executed, len(res.Answers))
	if len(res.Unmatched) > 0 {
		fmt.Printf("unmatched keywords: %v\n", res.Unmatched)
	}
	for i, c := range res.Candidates {
		marker := " "
		if i < res.Executed {
			marker = "*"
		}
		fmt.Printf("%s c%d score=%.3f  %s\n", marker, i, c.Score, c.Explain)
	}
	for i, a := range res.Answers {
		fmt.Printf("%2d. %-24s blended=%.3f score=%.3f (candidate %d)\n",
			i+1, a.Entity, a.Blended, a.Score, a.Candidate)
	}
}

func printResult(res api.Result, bound time.Duration) {
	mode := "SGQ (exact)"
	if bound > 0 {
		mode = fmt.Sprintf("TBQ (bound %s, approximate=%v)", bound, res.Approximate)
	}
	fmt.Printf("%s answered in %s — %d answer(s)\n", mode,
		time.Duration(res.Elapsed).Round(time.Microsecond), len(res.Answers))
	for i, a := range res.Answers {
		fmt.Printf("%2d. %-24s score=%.3f\n", i+1, a.Entity, a.Score)
		for _, p := range a.Parts {
			fmt.Printf("      pss=%.3f:", p.PSS)
			for _, s := range p.Steps {
				fmt.Printf(" %s-[%s]->%s", s.From, s.Predicate, s.To)
			}
			fmt.Println()
		}
	}
}

func loadGraph(path string) *kg.Graph {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	// Either storage format works: TSV triples or a binary snapshot
	// (kggen -snapshot / semkgd -save-snapshot), sniffed by magic.
	g, err := kg.ReadGraph(f)
	if err != nil {
		fail(err)
	}
	return g
}

func loadModel(path string) *embed.Model {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	m, err := embed.ReadModel(f)
	if err != nil {
		fail(err)
	}
	return m
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "kgsearch: %v\n", err)
	os.Exit(1)
}
