package api

import (
	"encoding/json"
	"fmt"

	"semkg/internal/core"
)

// Wire event discriminators (the "event" field of an NDJSON line).
const (
	EventProgress = "progress"
	EventTopK     = "topk"
	EventPhase    = "phase"
	EventResult   = "result"
)

// Event is the wire form of one stream event: a single struct with an
// "event" discriminator, so every NDJSON line is self-describing. Only the
// fields of the discriminated kind are populated:
//
//   - progress: sub, collected, done
//   - phase:    phase, plus elapsed/projected (alert) or sizes (assemble)
//   - topk:     round, lower_k, upper_max, answers
//   - result:   result
type Event struct {
	Event string `json:"event"`

	// progress
	Sub       *int `json:"sub,omitempty"`
	Collected int  `json:"collected,omitempty"`
	Done      bool `json:"done,omitempty"`

	// phase
	Phase     string   `json:"phase,omitempty"`
	Elapsed   Duration `json:"elapsed,omitempty"`
	Projected Duration `json:"projected,omitempty"`
	Sizes     []int    `json:"sizes,omitempty"`

	// topk
	Round    int      `json:"round,omitempty"`
	LowerK   float64  `json:"lower_k,omitempty"`
	UpperMax float64  `json:"upper_max,omitempty"`
	Answers  []Answer `json:"answers,omitempty"`

	// result
	Result *Result `json:"result,omitempty"`
}

// EventFrom converts a core stream event into its wire form.
func EventFrom(ev core.Event) (Event, error) {
	switch e := ev.(type) {
	case core.ProgressEvent:
		sub := e.Sub
		return Event{Event: EventProgress, Sub: &sub, Collected: e.Collected, Done: e.Done}, nil
	case core.PhaseEvent:
		return Event{
			Event:     EventPhase,
			Phase:     string(e.Phase),
			Elapsed:   Duration(e.Elapsed),
			Projected: Duration(e.Projected),
			Sizes:     e.Collected,
		}, nil
	case core.TopKEvent:
		return Event{
			Event:    EventTopK,
			Round:    e.Round,
			LowerK:   e.LowerK,
			UpperMax: e.UpperMax,
			Answers:  AnswersFrom(e.Answers),
		}, nil
	case core.ResultEvent:
		r := ResultFrom(e.Result)
		return Event{Event: EventResult, Result: &r}, nil
	default:
		return Event{}, fmt.Errorf("api: unknown event type %T", ev)
	}
}

// EncodeEvent renders one stream event as a single NDJSON line (without
// the trailing newline).
func EncodeEvent(ev core.Event) ([]byte, error) {
	w, err := EventFrom(ev)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// DecodeEvent parses one NDJSON event line.
func DecodeEvent(line []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, fmt.Errorf("api: parsing event: %w", err)
	}
	if ev.Event == "" {
		return Event{}, fmt.Errorf("api: event line missing %q discriminator", "event")
	}
	return ev, nil
}
