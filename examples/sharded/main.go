// Sharded: scatter-gather execution over a partitioned knowledge graph.
// The example saves a generated world as a binary snapshot, cold-starts a
// sharded engine from it (the partition derives deterministically from
// the loaded graph), and streams a time-bounded query — the progress
// events arrive attributed to the shard whose search produced them, and
// the merged result carries the same answers the single engine returns.
//
// Run with: go run ./examples/sharded
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"semkg"
	"semkg/internal/datagen"
)

func main() {
	ctx := context.Background()
	ds := datagen.Generate(datagen.DBpediaLike(0.4))
	model, err := semkg.Train(ctx, ds.Graph, semkg.TrainConfig{Dim: 48, Epochs: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot round trip: in production the snapshot lives on disk
	// (semkgd -snapshot g.snap -shards 4); the bytes are the same.
	var snapshot bytes.Buffer
	if err := semkg.SaveSnapshot(&snapshot, ds.Graph); err != nil {
		log.Fatal(err)
	}
	eng, err := semkg.NewShardedEngineFromSnapshot(&snapshot, model, ds.Library,
		semkg.ShardConfig{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("partitioned %d nodes into %d shards (halo %d, replication %.1fx):\n",
		eng.Graph().NumNodes(), st.Shards, st.Halo, st.ReplicationFactor)
	for _, s := range st.PerShard {
		fmt.Printf("  shard %d: %5d nodes (%4d owned, %4d halo replicas), %5d edges\n",
			s.Index, s.Nodes, s.Owned, s.Replicated, s.Edges)
	}

	// A multi-sub-query (complex) query: each sub-query search fans out
	// across the shards; the merger reassembles one global top-k.
	q := ds.Complex[0]
	opts := semkg.Options{K: 10, Tau: 0.7, MaxHops: 4, TimeBound: 250 * time.Millisecond}
	stream, err := eng.Stream(ctx, q.Graph, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming %s (k=%d, bound %s)\n\n", q.Name, opts.K, opts.TimeBound)
	for ev := range stream.Events() {
		switch e := ev.(type) {
		case semkg.ProgressEvent:
			// Per-update progress events arrive too; printing only each
			// (shard, sub) search's closing line keeps the log short.
			if e.Done {
				fmt.Printf("shard %d  sub %d  done with %d match(es)\n", e.Shard, e.Sub, e.Collected)
			}
		case semkg.PhaseEvent:
			fmt.Printf("phase %-8s %v\n", e.Phase, e.Collected)
		case semkg.TopKEvent:
			fmt.Printf("topk  round %-3d %d answer(s), L_k=%.3f U_max=%.3f\n",
				e.Round, len(e.Answers), e.LowerK, e.UpperMax)
		case semkg.ResultEvent:
			res := e.Result
			fmt.Printf("\nterminal: %d answer(s) in %s (approximate=%v)\n",
				len(res.Answers), res.Elapsed.Round(time.Microsecond), res.Approximate)
			for i, a := range res.Answers {
				if i >= 5 {
					fmt.Printf("    ... %d more\n", len(res.Answers)-i)
					break
				}
				fmt.Printf("%2d. %-28s score=%.3f\n", i+1, a.PivotName, a.Score)
			}
		}
	}

	fmt.Println("\nThe same engine satisfies semkg.Queryer: wrap it with semkg.NewServing")
	fmt.Println("(or run semkgd -shards 4) and the serving layer's caches, singleflight")
	fmt.Println("and admission control apply unchanged.")
}
