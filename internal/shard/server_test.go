// Protocol-level tests for the shard server: these speak raw shardwire
// over httptest — no coordinator — and pin down the contract the
// distributed pipeline's exactness rests on: strict request validation,
// deterministic exact streams, offset resume, inactive-projection
// completeness, and eager-mode best-per-end equivalence.
//
// External test package: core imports shard, so these tests import core
// (for plan compilation and wire blueprints) from the outside.
package shard_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/shard"
	"semkg/internal/shardwire"
)

// serverWorld is a tiny deterministic world, its engine, a 2-shard
// partition, and one server process holding BOTH shards (the router must
// dispatch by the request's shard index, not by accident of deployment).
type serverWorld struct {
	ds   *datagen.Dataset
	eng  *core.Engine
	set  *shard.Set
	srv  *shard.Server
	http *httptest.Server
}

func newServerWorld(t *testing.T, seed int64) *serverWorld {
	t.Helper()
	ds := datagen.Generate(datagen.Profile{
		Name: "tiny", Seed: seed,
		Countries: 4, CitiesPerCtr: 2, Companies: 12, Autos: 70,
		People: 24, Engines: 12, Clubs: 6, FillerTypes: 2, FillerPerType: 3,
	})
	rng := rand.New(rand.NewSource(seed * 31))
	names := ds.Graph.Predicates()
	vecs := make([]embed.Vector, len(names))
	for i := range vecs {
		v := make(embed.Vector, 8)
		for j := range v {
			v[j] = 0.1 + 0.9*rng.Float64()
		}
		vecs[i] = v
	}
	sp, err := embed.NewSpace(names, vecs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Graph, sp, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Partition(ds.Graph, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := shard.NewServer(set.Shard(0), set.Shard(1))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return &serverWorld{ds: ds, eng: eng, set: set, srv: srv, http: hs}
}

var serverOpts = core.Options{K: 5, Tau: 0.5, MaxHops: 3}

// wireRequest compiles q once globally and builds the request the
// coordinator would send for (shard, sub).
func (w *serverWorld) wireRequest(t *testing.T, q int, shardIdx, sub int) *shardwire.SearchRequest {
	t.Helper()
	plan, err := w.eng.Compile(w.workload()[q].Graph, serverOpts)
	if err != nil {
		t.Fatal(err)
	}
	bps, err := plan.WireBlueprints()
	if err != nil {
		t.Fatal(err)
	}
	if sub >= len(bps) {
		t.Fatalf("query %d has %d sub-queries, want index %d", q, len(bps), sub)
	}
	return &shardwire.SearchRequest{
		Shard: shardIdx, Sub: sub, Blueprint: bps[sub],
		Tau: serverOpts.Tau, MaxHops: serverOpts.MaxHops,
	}
}

func (w *serverWorld) workload() []datagen.GenQuery {
	qs := append([]datagen.GenQuery(nil), w.ds.Simple...)
	qs = append(qs, w.ds.Medium...)
	qs = append(qs, w.ds.Complex...)
	return qs
}

// activeOn mirrors the server's projection activity rule: at least one
// anchor and every end set must project into the shard.
func activeOn(sh *shard.Shard, bp shardwire.Blueprint) bool {
	anchored := false
	for _, a := range bp.Anchors {
		if _, ok := sh.LocalNode(kg.NodeID(a)); ok {
			anchored = true
			break
		}
	}
	if !anchored {
		return false
	}
	for _, set := range bp.EndSets {
		any := false
		for _, g := range set {
			if _, ok := sh.LocalNode(kg.NodeID(g)); ok {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// post sends req and returns the HTTP status and raw body.
func (w *serverWorld) post(t *testing.T, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(w.http.URL+shardwire.PathSearch, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func (w *serverWorld) search(t *testing.T, req *shardwire.SearchRequest) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return w.post(t, b)
}

// decodeStream splits an NDJSON body into match lines and the terminal.
func decodeStream(t *testing.T, body []byte) (matches []shardwire.Line, terminal shardwire.Line) {
	t.Helper()
	lr := shardwire.NewLineReader(bytes.NewReader(body))
	for {
		l, err := lr.Next()
		if err == io.EOF {
			t.Fatalf("stream ended without a terminal line (%d matches so far)", len(matches))
		}
		if err != nil {
			t.Fatal(err)
		}
		if l.Terminal() {
			return matches, l
		}
		matches = append(matches, l)
	}
}

// findActive locates a (query, shard, sub) whose exact stream has at
// least minMatches matches, for the determinism and resume tests.
func (w *serverWorld) findActive(t *testing.T, minMatches int) (*shardwire.SearchRequest, []shardwire.Line, shardwire.Line) {
	t.Helper()
	for q := range w.workload() {
		plan, err := w.eng.Compile(w.workload()[q].Graph, serverOpts)
		if err != nil {
			t.Fatal(err)
		}
		bps, err := plan.WireBlueprints()
		if err != nil {
			t.Fatal(err)
		}
		for sub := range bps {
			for si := 0; si < w.set.Len(); si++ {
				if !activeOn(w.set.Shard(si), bps[sub]) {
					continue
				}
				req := &shardwire.SearchRequest{
					Shard: si, Sub: sub, Blueprint: bps[sub],
					Tau: serverOpts.Tau, MaxHops: serverOpts.MaxHops,
				}
				status, body := w.search(t, req)
				if status != http.StatusOK {
					t.Fatalf("active search status %d: %s", status, body)
				}
				matches, terminal := decodeStream(t, body)
				if len(matches) >= minMatches {
					return req, matches, terminal
				}
			}
		}
	}
	t.Fatalf("no (query, shard, sub) with >= %d matches in the test world", minMatches)
	return nil, nil, shardwire.Line{}
}

func TestServerMeta(t *testing.T) {
	w := newServerWorld(t, 3)
	resp, err := http.Get(w.http.URL + shardwire.PathMeta)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m shardwire.Meta
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 {
		t.Fatalf("meta lists %d shards, want 2", len(m.Shards))
	}
	owned := 0
	for i, info := range m.Shards {
		if info.Index != i || info.Shards != 2 {
			t.Fatalf("shard %d meta identity %+v", i, info)
		}
		if info.Halo != w.set.Halo() {
			t.Fatalf("shard %d halo %d, want %d", i, info.Halo, w.set.Halo())
		}
		if info.Nodes <= 0 || info.Owned <= 0 || len(info.Samples) == 0 {
			t.Fatalf("shard %d implausibly empty: %+v", i, info)
		}
		if int(info.MaxGlobalNode) >= w.ds.Graph.NumNodes() {
			t.Fatalf("shard %d max global node %d out of base range", i, info.MaxGlobalNode)
		}
		// Every sample must agree with the base graph — this is exactly
		// the probe the coordinator runs to reject stale snapshots.
		for _, s := range info.Samples {
			if got := w.ds.Graph.NodeName(kg.NodeID(s.ID)); got != s.Name {
				t.Fatalf("sample %d: shard says %q, base graph says %q", s.ID, s.Name, got)
			}
		}
		owned += info.Owned
	}
	if owned != w.ds.Graph.NumNodes() {
		t.Fatalf("meta owned total %d, want %d", owned, w.ds.Graph.NumNodes())
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	w := newServerWorld(t, 3)
	valid := func() *shardwire.SearchRequest { return w.wireRequest(t, 0, 0, 0) }

	t.Run("malformed json", func(t *testing.T) {
		status, _ := w.post(t, []byte(`{"shard":`))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", status)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		// Version skew must fail loudly, not truncate semantics silently.
		status, body := w.post(t, []byte(`{"shard":0,"tau":0.5,"max_hops":2,"anchors":[],"end_sets":[],"rows":[],"surprise":1}`))
		if status != http.StatusBadRequest || !strings.Contains(string(body), "surprise") {
			t.Fatalf("status %d body %s, want 400 naming the unknown field", status, body)
		}
	})
	t.Run("tau out of range", func(t *testing.T) {
		req := valid()
		req.Tau = 0
		if status, _ := w.search(t, req); status != http.StatusBadRequest {
			t.Fatal("tau=0 accepted")
		}
	})
	t.Run("rows segments mismatch", func(t *testing.T) {
		req := valid()
		req.Rows = req.Rows[:0]
		if len(req.EndSets) == 0 {
			t.Skip("sub-query has no segments")
		}
		if status, _ := w.search(t, req); status != http.StatusBadRequest {
			t.Fatal("rows/segments mismatch accepted")
		}
	})
	t.Run("unknown shard", func(t *testing.T) {
		req := valid()
		req.Shard = 7
		status, body := w.search(t, req)
		if status != http.StatusNotFound {
			t.Fatalf("status %d body %s, want 404", status, body)
		}
	})
	t.Run("max hops beyond halo", func(t *testing.T) {
		req := valid()
		req.MaxHops = w.set.Halo() + 1
		status, body := w.search(t, req)
		if status != http.StatusBadRequest || !strings.Contains(string(body), "halo") {
			t.Fatalf("status %d body %s, want 400 naming the halo", status, body)
		}
	})
	t.Run("stale predicate rows", func(t *testing.T) {
		// A row set missing a shard predicate means the snapshot outlived
		// the coordinator's graph — find an active (shard, sub) so the
		// check is actually reached, then strip one predicate everywhere.
		req, _, _ := w.findActive(t, 1)
		some := ""
		for name := range req.Rows[0] {
			some = name
			break
		}
		for _, row := range req.Rows {
			delete(row, some)
		}
		status, body := w.search(t, req)
		if status != http.StatusBadRequest || !strings.Contains(string(body), "stale") {
			t.Fatalf("status %d body %s, want 400 suggesting a stale snapshot", status, body)
		}
	})

	if st := w.srv.Stats(); st.Errors == 0 {
		t.Fatalf("rejections not counted: %+v", st)
	}
}

// TestServerInactiveProjection: a sub-query that provably cannot match on
// this shard (no anchor projects) completes immediately as an exhausted
// empty stream — completeness, not an error, or the coordinator's merge
// would never terminate.
func TestServerInactiveProjection(t *testing.T) {
	w := newServerWorld(t, 3)
	req := w.wireRequest(t, 0, 0, 0)
	req.Anchors = nil
	status, body := w.search(t, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	matches, terminal := decodeStream(t, body)
	if len(matches) != 0 {
		t.Fatalf("%d matches from an anchorless projection", len(matches))
	}
	if !terminal.Done || !terminal.Exhausted || terminal.Stats == nil {
		t.Fatalf("terminal %+v, want done+exhausted with stats", terminal)
	}
}

// TestServerExactStreamDeterminismAndResume pins the property the whole
// failover design rests on: the exact stream is deterministic for a
// given (shard snapshot, request), sorted by non-increasing pss, and
// Offset=N returns exactly the suffix after N matches.
func TestServerExactStreamDeterminismAndResume(t *testing.T) {
	w := newServerWorld(t, 3)
	req, matches, terminal := w.findActive(t, 3)
	if !terminal.Done || !terminal.Exhausted || terminal.Stats == nil {
		t.Fatalf("exact terminal %+v", terminal)
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].PSS > matches[i-1].PSS {
			t.Fatalf("stream not sorted: pss %v after %v at %d", matches[i].PSS, matches[i-1].PSS, i)
		}
	}

	// Determinism: the same request streams byte-identical bodies.
	_, first := w.search(t, req)
	_, second := w.search(t, req)
	if !bytes.Equal(first, second) {
		t.Fatal("two runs of the same exact request differ byte-for-byte")
	}

	// Offset resume: the suffix after 2 consumed matches, as a failed-over
	// coordinator would request it.
	resumed := *req
	resumed.Offset = 2
	status, body := w.search(t, &resumed)
	if status != http.StatusOK {
		t.Fatalf("resume status %d: %s", status, body)
	}
	rm, rterm := decodeStream(t, body)
	if len(rm) != len(matches)-2 {
		t.Fatalf("resume returned %d matches, want %d", len(rm), len(matches)-2)
	}
	for i := range rm {
		wantLine, _ := shardwire.EncodeLine(matches[i+2])
		gotLine, _ := shardwire.EncodeLine(rm[i])
		if !bytes.Equal(gotLine, wantLine) {
			t.Fatalf("resume match %d differs:\n got %s\nwant %s", i, gotLine, wantLine)
		}
	}
	if !rterm.Done || !rterm.Exhausted {
		t.Fatalf("resume terminal %+v", rterm)
	}

	// Offset past the end: an empty, cleanly exhausted stream.
	past := *req
	past.Offset = len(matches) + 1000
	_, body = w.search(t, &past)
	pm, pterm := decodeStream(t, body)
	if len(pm) != 0 || !pterm.Done || !pterm.Exhausted {
		t.Fatalf("offset-past-end gave %d matches, terminal %+v", len(pm), pterm)
	}

	if st := w.srv.Stats(); st.Searches == 0 || st.Matches == 0 {
		t.Fatalf("traffic not counted: %+v", st)
	}
}

// TestServerEagerBestPerEnd: with a generous time bound, eager mode must
// report exhaustion and return exactly the exact stream's best match per
// end node — the server-side half of the TBQ equivalence.
func TestServerEagerBestPerEnd(t *testing.T) {
	w := newServerWorld(t, 3)
	req, matches, _ := w.findActive(t, 2)

	type best struct{ pss float64 }
	want := make(map[uint32]best)
	for _, m := range matches {
		end := m.Nodes[len(m.Nodes)-1]
		if b, ok := want[end]; !ok || m.PSS > b.pss {
			want[end] = best{pss: m.PSS}
		}
	}

	eager := *req
	eager.Eager = true
	eager.TimeBoundNs = int64(time.Hour)
	eager.AlertRatio = 0.5
	eager.PerMatchNs = int64(10 * time.Microsecond)
	status, body := w.search(t, &eager)
	if status != http.StatusOK {
		t.Fatalf("eager status %d: %s", status, body)
	}
	em, eterm := decodeStream(t, body)
	if !eterm.Done || !eterm.Exhausted {
		t.Fatalf("eager terminal %+v, want exhausted under an hour budget", eterm)
	}
	got := make(map[uint32]best)
	for _, m := range em {
		end := m.Nodes[len(m.Nodes)-1]
		if _, dup := got[end]; dup {
			t.Fatalf("eager burst repeats end node %d", end)
		}
		got[end] = best{pss: m.PSS}
	}
	if len(got) != len(want) {
		t.Fatalf("eager covers %d end nodes, exact stream has %d", len(got), len(want))
	}
	for end, b := range want {
		if g, ok := got[end]; !ok || g.pss != b.pss {
			t.Fatalf("end %d: eager %+v (present %v), want pss %v", end, g, ok, b.pss)
		}
	}
}
