// QA: the paper's motivating scenario (Fig. 1) end to end — "find all cars
// produced in Germany" asked through four differently-phrased query graphs
// over a DBpedia-like benchmark world, evaluated against the ground truth.
//
// Run with: go run ./examples/qa
package main

import (
	"context"
	"fmt"
	"log"

	"semkg"
	"semkg/internal/datagen"
	"semkg/internal/metrics"
)

func main() {
	ctx := context.Background()

	// Generate the DBpedia-like benchmark world: cars connect to their
	// production country through five kinds of schemas, and the workload
	// ships validation sets computed by exact schema evaluation.
	ds := datagen.Generate(datagen.DBpediaLike(0.3))
	fmt.Println("dataset:", ds.Graph.Stats())

	model, err := semkg.Train(ctx, ds.Graph, semkg.TrainConfig{Dim: 48, Epochs: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := semkg.NewEngine(ds.Graph, model, ds.Library)
	if err != nil {
		log.Fatal(err)
	}

	// The four Q117 variants of Fig. 1: G1 uses the synonym type <Car>,
	// G2 abbreviates the country name, G3 uses the sibling predicate
	// "product", G4 is the canonical phrasing. An exact matcher fails G1
	// and G2 outright and finds only the direct schema on G3/G4; the
	// semantic-guided search answers all four.
	for _, q := range ds.Table1 {
		k := len(q.Truth)
		res, err := eng.Search(ctx, q.Graph, semkg.Options{K: k, Tau: 0.7, MaxHops: 4})
		if err != nil {
			log.Fatal(err)
		}
		pr := metrics.Evaluate(res.EntitiesOf(q.Focus), q.Truth)
		fmt.Printf("%-16s |truth|=%d  answers=%d  P=%.2f R=%.2f F1=%.2f  (%s)\n",
			q.Name, len(q.Truth), len(res.Answers), pr.Precision, pr.Recall, pr.F1, res.Elapsed)
	}

	// Show one answer's explanation paths.
	q := ds.Table1[3]
	res, err := eng.Search(ctx, q.Graph, semkg.Options{K: 3, Tau: 0.7, MaxHops: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample explanations:")
	for _, a := range res.Answers {
		fmt.Printf("  %s (score %.3f)\n", a.PivotName, a.Score)
		for _, p := range a.Parts {
			fmt.Printf("    pss=%.3f:", p.PSS)
			for _, s := range p.Steps {
				fmt.Printf(" %s -[%s]-> %s", s.FromName, s.Predicate, s.ToName)
			}
			fmt.Println()
		}
	}
}
