package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/faultinject"
	"semkg/internal/kg"
	"semkg/internal/query"
)

// TestChaosFollowerKilledMidStream is the chaos acceptance test: a
// follower whose replication link is severed mid-delta-stream (once at
// an exact byte offset, then repeatedly at scheduled wall-clock points
// while the primary keeps committing) reconnects with backoff, resumes
// or snapshot-resyncs, converges to the primary's generation, and its
// *served results* — not just its graph bytes — are equal to the
// primary's.
func TestChaosFollowerKilledMidStream(t *testing.T) {
	// A small log budget makes compaction plausible while the follower
	// is down, so both recovery paths (resume and snapshot fallback)
	// are reachable; which one each reconnect takes depends on timing,
	// and the test must converge either way.
	p := NewPrimary(newServe(t), Config{MaxLogStatements: 64})
	defer p.Close()
	ts := startPrimary(t, p)

	proxy, err := faultinject.NewProxy(ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// The first connection dies mid-delta-stream: 900 bytes is past the
	// hello + bootstrap snapshot of the seed world, inside the live
	// delta flow. Later connections pass clean (the scheduled SeverAlls
	// take over the killing).
	var first atomic.Bool
	first.Store(true)
	proxy.SetScript(func() *faultinject.Script {
		if first.CompareAndSwap(true, false) {
			return faultinject.NewScript(faultinject.Point{After: 900, Op: faultinject.Sever})
		}
		return nil
	})

	f := NewFollower(newFollowerServe(t), FollowerConfig{
		Source: proxy.URL(),
		Backoff: Backoff{Min: 2 * time.Millisecond, Max: 20 * time.Millisecond,
			Rand: rand.New(rand.NewSource(7))},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	// Scheduled process-level kills while the writer runs: each fires
	// at a random point in whatever the follower is doing.
	for _, at := range []time.Duration{
		15 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond,
	} {
		cancelKill := faultinject.Schedule(at, proxy.SeverAll)
		defer cancelKill()
	}

	// The primary keeps committing throughout the chaos.
	preds := []string{"assembly", "manufacturer", "country", "locationCountry"}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 80; i++ {
		d := p.Serve().NewDelta()
		for j, n := 0, 1+rng.Intn(3); j < n; j++ {
			s := fmt.Sprintf("Chaos%d", rng.Intn(50))
			var err error
			if rng.Float64() < 0.25 {
				err = d.ApplyTriple(s, kg.TypePredicate, "Automobile")
			} else {
				err = d.ApplyTriple(s, preds[rng.Intn(len(preds))], "Germany")
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Commit(d); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Recovery: the follower reaches the primary's head generation and
	// the graphs are snapshot-byte identical.
	assertConverged(t, f, p)
	st := f.Stats()
	if st.Reconnects == 0 {
		t.Fatal("no reconnects recorded — the kills never landed")
	}
	t.Logf("chaos stats: %+v", st)

	// Served-results equality: the same query answered by both nodes'
	// serving layers returns identical ranked answers.
	q := &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "assembly"}},
	}
	opts := core.Options{K: 10, Tau: 0.75}
	pres, err := p.Serve().Search(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := f.Serve().Search(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answersJSON(t, pres), answersJSON(t, fres)) {
		t.Fatalf("served answers diverge:\nprimary:  %s\nfollower: %s",
			answersJSON(t, pres), answersJSON(t, fres))
	}
}

// answersJSON renders a result's ranked answers (excluding timings) in
// wire form for cross-node comparison.
func answersJSON(t *testing.T, res *core.Result) []byte {
	t.Helper()
	b, err := json.Marshal(api.AnswersFrom(res.Answers))
	if err != nil {
		t.Fatal(err)
	}
	return b
}
