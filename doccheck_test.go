package semkg_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is the godoc gate for the public surface:
// every exported symbol in the semkg facade and in the internal/api wire
// vocabulary must carry a doc comment (the `revive exported` rule,
// enforced without a third-party dependency so it runs in plain `go
// test`). The facade is what library users import; internal/api is the
// wire contract clients program against — undocumented fields there are
// undocumented protocol.
func TestExportedSymbolsDocumented(t *testing.T) {
	var files []string
	roots, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range roots {
		if f == "semkg.go" { // the facade (tests and benches are not API)
			files = append(files, f)
		}
	}
	apiFiles, err := filepath.Glob(filepath.Join("internal", "api", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range apiFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) < 2 {
		t.Fatalf("doc check found only %v — wrong working directory?", files)
	}

	var missing []string
	for _, file := range files {
		missing = append(missing, undocumentedExports(t, file)...)
	}
	if len(missing) > 0 {
		t.Errorf("%d exported symbol(s) lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// undocumentedExports parses one file and returns its exported
// declarations (types, funcs, methods, consts, vars, struct fields of
// exported types) that have no doc comment.
func undocumentedExports(t *testing.T, path string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", path, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				name := d.Name.Name
				if d.Recv != nil {
					name = recvName(d.Recv) + "." + name
				}
				report(d.Pos(), "func", name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
						for _, field := range st.Fields.List {
							for _, id := range field.Names {
								if id.IsExported() && field.Doc == nil && field.Comment == nil {
									report(field.Pos(), "field", s.Name.Name+"."+id.Name)
								}
							}
						}
					}
				case *ast.ValueSpec:
					for _, id := range s.Names {
						// A const/var block's declaration comment covers
						// every name in it, matching godoc's rendering.
						if id.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(id.Pos(), "const/var", id.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// recvName renders a method receiver type for diagnostics.
func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return "?"
	}
	switch t := recv.List[0].Type.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}
