package replica

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/api"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

// Backoff is the reconnect schedule: attempt n (1-based) sleeps a
// uniformly jittered duration in [d/2, d] where d = Min·2^(n-1) capped
// at Max. Jitter keeps a fleet of followers from reconnecting in
// lockstep after a primary restart.
type Backoff struct {
	Min, Max time.Duration
	// Rand supplies jitter; nil means the global source. Tests inject a
	// seeded source for deterministic schedules.
	Rand *rand.Rand
}

// Delay returns the sleep before reconnect attempt n (1-based).
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.Min
	for i := 1; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	half := d / 2
	var j int64
	if half > 0 {
		if b.Rand != nil {
			j = b.Rand.Int63n(int64(half) + 1)
		} else {
			j = rand.Int63n(int64(half) + 1)
		}
	}
	return half + time.Duration(j)
}

// FollowerStats is a point-in-time view of a follower's replication
// state, for /healthz and expvar.
type FollowerStats struct {
	// Synced reports whether the follower has completed at least one
	// snapshot or resume and is inside a live stream epoch.
	Synced bool `json:"synced"`
	// Epoch is the primary incarnation being followed ("" before the
	// first hello).
	Epoch string `json:"epoch,omitempty"`
	// Generation is the last committed (published) generation.
	Generation uint64 `json:"generation"`
	// Head is the primary's head generation from the latest hello/ping.
	Head uint64 `json:"head"`
	// Lag is max(0, Head-Generation): committed-but-unapplied deltas.
	Lag uint64 `json:"lag"`
	// Reconnects counts stream (re)connection attempts that failed or
	// were severed; Resyncs counts full snapshot rebuilds.
	Reconnects uint64 `json:"reconnects"`
	Resyncs    uint64 `json:"resyncs"`
	// Primary is the advertised URL from the latest hello.
	Primary string `json:"primary,omitempty"`
}

// Follower tails a primary's /v1/replicate stream and applies it to a
// local serve engine. Run drives the reconnect loop; the engine serves
// reads the whole time, at whatever generation is locally committed.
type Follower struct {
	srv     *serve.Engine
	source  string // primary base URL
	client  *http.Client
	backoff Backoff

	mu      sync.Mutex
	epoch   string
	gen     uint64 // last locally committed primary generation
	synced  bool
	head    uint64
	primary string

	reconnects atomic.Uint64
	resyncs    atomic.Uint64

	// progress is closed and replaced on every commit — tests and the
	// promotion path wait on it instead of polling.
	progress chan struct{}
}

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Source is the primary's base URL (e.g. "http://127.0.0.1:8375").
	Source string
	// Client is the HTTP client for the stream; nil means a default
	// with no overall timeout (the stream is long-lived).
	Client *http.Client
	// Backoff overrides the reconnect schedule; zero means 50ms..2s.
	Backoff Backoff
}

// NewFollower wraps srv as a follower of the primary at cfg.Source.
func NewFollower(srv *serve.Engine, cfg FollowerConfig) *Follower {
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	bo := cfg.Backoff
	if bo.Min <= 0 {
		bo.Min = 50 * time.Millisecond
	}
	if bo.Max <= 0 {
		bo.Max = 2 * time.Second
	}
	return &Follower{
		srv:      srv,
		source:   cfg.Source,
		client:   client,
		backoff:  bo,
		progress: make(chan struct{}),
	}
}

// Serve returns the underlying serving engine.
func (f *Follower) Serve() *serve.Engine { return f.srv }

// SetSource re-points the follower at a different primary — the
// failover move after a promotion elsewhere in the fleet. The next
// (re)connection uses the new URL; the epoch check then forces the
// snapshot resync the new primary requires.
func (f *Follower) SetSource(url string) {
	f.mu.Lock()
	f.source = url
	f.mu.Unlock()
}

// Stats snapshots the follower's replication state.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	lag := uint64(0)
	if f.head > f.gen {
		lag = f.head - f.gen
	}
	return FollowerStats{
		Synced:     f.synced,
		Epoch:      f.epoch,
		Generation: f.gen,
		Head:       f.head,
		Lag:        lag,
		Reconnects: f.reconnects.Load(),
		Resyncs:    f.resyncs.Load(),
		Primary:    f.primary,
	}
}

// WaitSynced blocks until the follower has committed generation >= gen
// (within its current epoch) or ctx ends.
func (f *Follower) WaitSynced(ctx context.Context, gen uint64) error {
	for {
		f.mu.Lock()
		done := f.synced && f.gen >= gen
		ch := f.progress
		f.mu.Unlock()
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Run tails the primary until ctx ends, reconnecting with jittered
// exponential backoff. Stream progress (any committed batch) resets the
// backoff; a connection that dies before committing anything does not.
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	for {
		progressed, err := f.stream(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.reconnects.Add(1)
		if progressed {
			attempt = 0
		}
		attempt++
		delay := f.backoff.Delay(attempt)
		_ = err // every disconnect reason takes the same backoff path
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// stream opens one /v1/replicate connection and applies it until it
// breaks. It reports whether any batch was committed.
func (f *Follower) stream(ctx context.Context) (progressed bool, err error) {
	f.mu.Lock()
	url := f.source + "/v1/replicate"
	if f.synced {
		url = fmt.Sprintf("%s?from=%d&epoch=%s", url, f.gen, f.epoch)
	}
	f.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("replica: %s: %s", url, resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)

	// Batch state: nil delta = between batches. A snapshot batch
	// rebuilds from empty and publishes via RebuildGraph; a delta batch
	// applies over the served graph via Apply.
	var (
		d        *kg.Delta
		snapshot bool
		gotHello bool
	)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		frame, triple, isFrame, err := api.DecodeRepLine(line)
		if err != nil {
			return progressed, err
		}
		if !isFrame {
			if d == nil {
				return progressed, fmt.Errorf("replica: data line outside a batch")
			}
			if err := d.ApplyStatement(kg.Statement{S: triple.S, P: triple.P, O: triple.O}); err != nil {
				return progressed, err
			}
			continue
		}
		switch frame.Frame {
		case api.RepHello:
			if gotHello {
				return progressed, fmt.Errorf("replica: duplicate hello")
			}
			gotHello = true
			f.mu.Lock()
			if f.epoch != frame.Epoch {
				// New primary incarnation: local generations are no
				// longer comparable. The stream decides what follows
				// (it will be a snapshot, since our ?epoch= missed).
				f.epoch = frame.Epoch
				f.synced = false
			}
			f.head = frame.Generation
			f.primary = frame.Advertise
			f.mu.Unlock()
		case api.RepSnapshot:
			d = kg.NewDelta(kg.Empty())
			snapshot = true
		case api.RepDelta:
			d = f.srv.NewDelta()
			snapshot = false
		case api.RepNode:
			if d == nil {
				return progressed, fmt.Errorf("replica: node frame outside a batch")
			}
			if err := d.ApplyStatement(kg.Statement{S: frame.Name}); err != nil {
				return progressed, err
			}
		case api.RepCommit:
			if d == nil {
				return progressed, fmt.Errorf("replica: commit without a batch")
			}
			if snapshot {
				if err := f.srv.RebuildGraph(d.Commit()); err != nil {
					return progressed, err
				}
				f.resyncs.Add(1)
			} else {
				if _, err := f.srv.Apply(d); err != nil {
					return progressed, err
				}
			}
			d = nil
			f.mu.Lock()
			f.gen = frame.Generation
			f.synced = true
			if frame.Generation > f.head {
				f.head = frame.Generation
			}
			close(f.progress)
			f.progress = make(chan struct{})
			f.mu.Unlock()
			progressed = true
		case api.RepPing:
			f.mu.Lock()
			f.head = frame.Generation
			f.mu.Unlock()
		}
	}
	if err := sc.Err(); err != nil {
		return progressed, err
	}
	return progressed, fmt.Errorf("replica: stream ended")
}

// Promote turns the follower's state into a new Primary over the same
// serve engine, under a fresh epoch. The caller is responsible for
// having stopped Run (cancel its context) — a promoted node must not
// keep tailing the dead primary.
func (f *Follower) Promote(cfg Config) *Primary {
	return NewPrimary(f.srv, cfg)
}
