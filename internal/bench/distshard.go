// Distributed shard experiment: the MEASURED multi-process section of
// BENCH_shard.json. Where shard.go's rows model a one-worker-per-shard
// deployment from single-process runs, this section actually builds the
// deployment — shard snapshot files on disk, one REAL shard server
// process per shard (semkgd -serve-shard, launched from a binary built
// on the spot), and the HTTP scatter-gather coordinator (core.DistEngine)
// driving them through the serving layer under a closed-loop load — and
// reports what the wall clock says.
//
// The distinction is carried in the artifact itself: the modeled rows
// keep their "speedup" fields and methodology sentence; the distributed
// section has its own methodology string, its own env block (the
// coordinator's GOMAXPROCS is forced above 1 so the gather path can
// overlap the per-shard streams), and a launcher label saying whether
// the servers were real subprocesses or in-process stand-ins (tests).
// On a single-core host the multi-process rows measure coordination
// overhead, not parallel speedup — the env block's cpus field is how a
// reader tells those runs apart from a real multi-core deployment.
package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/query"
	"semkg/internal/serve"
	"semkg/internal/shard"
)

// distShardMethodology is embedded in the distributed section so the
// artifact is self-describing about measured vs modeled numbers.
const distShardMethodology = "every number in this section is measured wall-clock: shard snapshot " +
	"files are partitioned to disk, one shard server per shard answers /v1/shard/search over real " +
	"HTTP (see launcher for whether servers are subprocesses or in-process test stand-ins), and the " +
	"scatter-gather coordinator serves a closed-loop agent load; qps_gain_vs_1 and p50_gain_vs_1 " +
	"compare against the 1-shard distributed run so process and wire overhead are charged to both " +
	"sides, local_* fields are the same load on the plain in-process engine; unlike the modeled " +
	"speedup fields above, nothing here extrapolates — on a single-CPU host (see cpus) the " +
	"multi-shard rows can only show coordination overhead, not parallel speedup"

// DistShardConfig sizes the measured distributed run.
type DistShardConfig struct {
	Nodes           int     `json:"nodes"`
	Seed            int64   `json:"seed"`
	Dim             int     `json:"dim"`
	K               int     `json:"k"`
	Tau             float64 `json:"tau"`
	MaxHops         int     `json:"max_hops"`
	Agents          int     `json:"agents"`
	DistinctQueries int     `json:"distinct_queries"`
	WarmupMs        int64   `json:"warmup_ms"`
	MeasureMs       int64   `json:"measure_ms"`
	// CoordinatorGOMAXPROCS is forced for the duration of the run (and
	// restored after): the gather path needs >1 so reading one shard's
	// stream can overlap merging another's. ServerGOMAXPROCS is passed to
	// subprocess shard servers via their environment.
	CoordinatorGOMAXPROCS int  `json:"coordinator_gomaxprocs"`
	ServerGOMAXPROCS      int  `json:"server_gomaxprocs"`
	Short                 bool `json:"short"`
}

func distShardConfig(short bool) DistShardConfig {
	procs := runtime.NumCPU()
	if procs < 2 {
		procs = 2
	}
	cfg := DistShardConfig{
		Nodes:                 1_000_000,
		Seed:                  1,
		Dim:                   32,
		K:                     10,
		Tau:                   0.55,
		MaxHops:               2,
		Agents:                2 * procs,
		DistinctQueries:       256,
		WarmupMs:              1000,
		MeasureMs:             5000,
		CoordinatorGOMAXPROCS: procs,
		ServerGOMAXPROCS:      procs,
		Short:                 short,
	}
	if short {
		cfg.Nodes = 50_000
		cfg.Agents = 4
		cfg.DistinctQueries = 64
		cfg.WarmupMs = 250
		cfg.MeasureMs = 1000
	}
	return cfg
}

// DistShardRow is one measured shard-count deployment.
type DistShardRow struct {
	Shards int `json:"shards"`
	// PartitionMs and ShardFileBytes are the one-time deployment costs:
	// cutting the partition and the total size of the snapshot files.
	PartitionMs    float64 `json:"partition_ms"`
	ShardFileBytes int64   `json:"shard_file_bytes"`
	// Closed-loop results over the measure phase.
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Overloaded int     `json:"overloaded_429"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	// Coordinator counters for the run. Fallbacks must be zero for the
	// row to mean anything — a non-zero value says searches were answered
	// by the local engine, not the deployment.
	DistSearches uint64 `json:"dist_searches"`
	Fallbacks    uint64 `json:"local_fallbacks"`
	Hedges       uint64 `json:"hedges"`
	Retries      uint64 `json:"retries"`
	Failovers    uint64 `json:"failovers"`
	// QPSGainVs1 and P50GainVs1 compare against the 1-shard distributed
	// run (>1 means this row is better); both sides pay the process and
	// wire overhead, so the ratio isolates the partition's contribution.
	QPSGainVs1 float64 `json:"qps_gain_vs_1,omitempty"`
	P50GainVs1 float64 `json:"p50_gain_vs_1,omitempty"`
}

// DistShardSection is the measured multi-process block of ShardResult.
type DistShardSection struct {
	Methodology string          `json:"methodology"`
	Launcher    string          `json:"launcher"`
	Scale       string          `json:"scale"`
	Config      DistShardConfig `json:"config"`
	EnvInfo
	// LocalQPS / LocalP50Ms are the same closed loop over the plain
	// in-process engine: what the deployment gives up to the wire.
	LocalQPS   float64        `json:"local_qps"`
	LocalP50Ms float64        `json:"local_p50_ms"`
	Rows       []DistShardRow `json:"rows"`
}

// ShardServerLauncher abstracts how shard servers come up: real semkgd
// subprocesses for kgbench runs, in-process HTTP servers for tests.
type ShardServerLauncher interface {
	// Name labels the launcher in the artifact.
	Name() string
	// Launch starts one server holding the given shard snapshot files and
	// returns its base URL and a stop function.
	Launch(files []string) (url string, stop func(), err error)
}

// SubprocessLauncher builds the semkgd binary once and launches real
// `semkgd -serve-shard` processes.
type SubprocessLauncher struct {
	dir string
	bin string
	// Procs, when non-zero, is exported as GOMAXPROCS to launched servers.
	Procs int
}

// NewSubprocessLauncher builds semkgd into dir.
func NewSubprocessLauncher(dir string) (*SubprocessLauncher, error) {
	bin := filepath.Join(dir, "semkgd")
	cmd := exec.Command("go", "build", "-o", bin, "semkg/cmd/semkgd")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("bench: building semkgd: %w\n%s", err, out.Bytes())
	}
	return &SubprocessLauncher{dir: dir, bin: bin}, nil
}

// Name implements ShardServerLauncher.
func (l *SubprocessLauncher) Name() string { return "subprocess (semkgd -serve-shard)" }

// Launch implements ShardServerLauncher.
func (l *SubprocessLauncher) Launch(files []string) (string, func(), error) {
	addrFile, err := os.CreateTemp(l.dir, "addr-*")
	if err != nil {
		return "", nil, err
	}
	addrPath := addrFile.Name()
	addrFile.Close()
	os.Remove(addrPath)

	cmd := exec.Command(l.bin,
		"-serve-shard", strings.Join(files, ","),
		"-addr", "127.0.0.1:0", "-addr-file", addrPath)
	var logBuf bytes.Buffer
	cmd.Stderr = &logBuf
	if l.Procs > 0 {
		cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", l.Procs))
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	stop := func() {
		_ = cmd.Process.Kill()
		<-exited
		os.Remove(addrPath)
	}
	// Loading a million-node shard is a full snapshot decode plus index
	// build inside the subprocess, sharing the host with the already-built
	// coordinator world — give it minutes, but fail immediately if the
	// process dies.
	deadline := time.Now().Add(10 * time.Minute)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			os.Remove(addrPath)
			return "", nil, fmt.Errorf("bench: shard server exited before listening (%v); log:\n%s", err, logBuf.Bytes())
		default:
		}
		b, err := os.ReadFile(addrPath)
		if err == nil && len(bytes.TrimSpace(b)) > 0 {
			return "http://" + string(bytes.TrimSpace(b)), stop, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop()
	return "", nil, fmt.Errorf("bench: shard server never announced an address; log:\n%s", logBuf.Bytes())
}

// InprocLauncher serves shard files from httptest servers inside this
// process: the test stand-in, labeled as such in the artifact.
type InprocLauncher struct{}

// Name implements ShardServerLauncher.
func (l *InprocLauncher) Name() string { return "in-process (httptest stand-in)" }

// Launch implements ShardServerLauncher.
func (l *InprocLauncher) Launch(files []string) (string, func(), error) {
	shards := make([]*shard.Shard, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return "", nil, err
		}
		sh, err := shard.ReadShard(f)
		f.Close()
		if err != nil {
			return "", nil, fmt.Errorf("bench: loading %s: %w", path, err)
		}
		shards[i] = sh
	}
	srv, err := shard.NewServer(shards...)
	if err != nil {
		return "", nil, err
	}
	hs := httptest.NewServer(srv.Handler())
	return hs.URL, hs.Close, nil
}

// RunDistShard measures the distributed deployment at 1, 2 and 4 shards.
// A nil launcher builds semkgd and uses real subprocesses.
func RunDistShard(short bool, launcher ShardServerLauncher) (*DistShardSection, error) {
	return runDistShard(distShardConfig(short), launcher)
}

func runDistShard(cfg DistShardConfig, launcher ShardServerLauncher) (*DistShardSection, error) {
	dir, err := os.MkdirTemp("", "semkg-distshard-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if launcher == nil {
		sub, err := NewSubprocessLauncher(dir)
		if err != nil {
			return nil, err
		}
		sub.Procs = cfg.ServerGOMAXPROCS
		launcher = sub
	}

	// Force the coordinator's parallelism for the measured window: the
	// gather path must be able to read one shard's stream while merging
	// another's, which GOMAXPROCS=1 serializes.
	prevProcs := runtime.GOMAXPROCS(cfg.CoordinatorGOMAXPROCS)
	defer runtime.GOMAXPROCS(prevProcs)

	p := datagen.LargeWorld(cfg.Nodes)
	p.Seed = cfg.Seed
	g := datagen.GenerateLarge(p)
	space, err := (&embed.Model{Cfg: embed.Config{Dim: cfg.Dim}}).SpaceFor(g)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(g, space, nil)
	if err != nil {
		return nil, err
	}
	queries := datagen.LargeQueries(g, p, cfg.DistinctQueries)

	sec := &DistShardSection{
		Methodology: distShardMethodology,
		Launcher:    launcher.Name(),
		Scale:       fmt.Sprintf("%d nodes / %d edges", g.NumNodes(), g.NumEdges()),
		Config:      cfg,
		EnvInfo:     CaptureEnv(),
	}

	// The driver phases reuse the load harness's closed loop, in its
	// cache-bypassed shape: a random pivot marks every request
	// uncacheable, so each one runs the full pipeline through the
	// deployment. A cache-served loop would measure the coordinator's
	// result cache at every shard count — identically.
	loadCfg := LoadConfig{
		Agents: cfg.Agents, WarmupMs: cfg.WarmupMs, MeasureMs: cfg.MeasureMs,
		K: cfg.K, Tau: cfg.Tau, MaxHops: cfg.MaxHops,
	}
	mkOpts := func(agent int) core.Options {
		return core.Options{
			K: cfg.K, Tau: cfg.Tau, MaxHops: cfg.MaxHops,
			Strategy: query.RandomPivot,
			Rng:      rand.New(rand.NewSource(int64(8800 + agent))),
		}
	}

	local, err := closedLoop(serve.New(eng, serve.Config{}), queries, loadCfg, "local", mkOpts)
	if err != nil {
		return nil, err
	}
	sec.LocalQPS = local.QPS
	sec.LocalP50Ms = local.P50Ms

	for _, n := range []int{1, 2, 4} {
		row, err := runDistShardRow(eng, queries, loadCfg, mkOpts, launcher, dir, n)
		if err != nil {
			return nil, err
		}
		sec.Rows = append(sec.Rows, *row)
	}
	base := sec.Rows[0]
	for i := range sec.Rows[1:] {
		r := &sec.Rows[i+1]
		if base.QPS > 0 {
			r.QPSGainVs1 = r.QPS / base.QPS
		}
		if r.P50Ms > 0 {
			r.P50GainVs1 = base.P50Ms / r.P50Ms
		}
	}
	return sec, nil
}

// runDistShardRow deploys one shard count end to end and drives it.
func runDistShardRow(eng *core.Engine, queries []*query.Graph, loadCfg LoadConfig,
	mkOpts func(int) core.Options, launcher ShardServerLauncher, dir string, n int) (*DistShardRow, error) {
	pStart := time.Now()
	set, err := shard.Partition(eng.Graph(), shard.Options{Shards: n})
	if err != nil {
		return nil, err
	}
	row := &DistShardRow{Shards: n, PartitionMs: ms(time.Since(pStart))}

	shardDir := filepath.Join(dir, fmt.Sprintf("shards-%d", n))
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		return nil, err
	}
	// Cleaning each deployment up before the next keeps peak disk and
	// process count at one deployment's worth on the 1M-node run.
	defer os.RemoveAll(shardDir)
	hosts := make([][]string, n)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		path := filepath.Join(shardDir, fmt.Sprintf("shard-%d-of-%d.shard", i, n))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := shard.WriteShard(f, set.Shard(i)); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		if fi, err := os.Stat(path); err == nil {
			row.ShardFileBytes += fi.Size()
		}
		url, stop, err := launcher.Launch([]string{path})
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
		hosts[i] = []string{url}
	}

	de, err := core.NewDistEngine(eng, hosts, core.DistConfig{})
	if err != nil {
		return nil, err
	}
	drv, err := closedLoop(serve.New(de, serve.Config{}), queries, loadCfg,
		fmt.Sprintf("distributed-%d", n), mkOpts)
	if err != nil {
		return nil, err
	}
	st := de.Stats()
	row.Requests = drv.Requests
	row.Errors = drv.Errors
	row.Overloaded = drv.Overloaded
	row.QPS = drv.QPS
	row.P50Ms = drv.P50Ms
	row.P95Ms = drv.P95Ms
	row.DistSearches = st.Searches
	row.Fallbacks = st.Fallbacks
	row.Hedges = st.Hedges
	row.Retries = st.Retries
	row.Failovers = st.Failovers
	return row, nil
}

// renderRows appends the measured distributed rows to the shard table
// (called by ShardResult.Render when the section is present).
func (s *DistShardSection) renderRows(t *Table) {
	t.AddRow("— measured multi-process —", s.Launcher, "", "",
		fmt.Sprintf("local: %.0f qps, p50 %.2f ms", s.LocalQPS, s.LocalP50Ms), "", "", "")
	for _, r := range s.Rows {
		gain := "(baseline)"
		if r.QPSGainVs1 > 0 {
			gain = fmt.Sprintf("%.2fx qps, %.2fx p50 vs 1-shard", r.QPSGainVs1, r.P50GainVs1)
		}
		t.AddRow(
			fmt.Sprintf("%d (dist)", r.Shards),
			fmt.Sprintf("%.1f", r.PartitionMs),
			fmt.Sprintf("%.1f MB", float64(r.ShardFileBytes)/(1<<20)),
			fmt.Sprintf("%.0f qps", r.QPS),
			fmt.Sprintf("p50 %.2f / p95 %.2f ms", r.P50Ms, r.P95Ms),
			fmt.Sprintf("%d req, %d err", r.Requests, r.Errors),
			fmt.Sprintf("%d hedge/%d retry", r.Hedges, r.Retries),
			gain,
		)
	}
}
