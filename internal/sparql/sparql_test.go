package sparql

import (
	"testing"

	"semkg/internal/kg"
)

func carsGraph() *kg.Graph {
	b := kg.NewBuilder(16, 16)
	ger := b.AddNode("Germany", "Country")
	france := b.AddNode("France", "Country")
	city := b.AddNode("Regensburg", "City")
	bmw := b.AddNode("BMW_320", "Automobile")
	audi := b.AddNode("Audi_TT", "Automobile")
	z4 := b.AddNode("BMW_Z4", "Automobile")
	clio := b.AddNode("Renault_Clio", "Automobile")
	b.AddEdge(bmw, ger, "assembly")
	b.AddEdge(audi, ger, "assembly")
	b.AddEdge(z4, city, "assembly")
	b.AddEdge(city, ger, "country")
	b.AddEdge(clio, france, "assembly")
	return b.Build()
}

func TestEvalDirectSchema(t *testing.T) {
	g := carsGraph()
	q := Query{Patterns: []Pattern{
		{Subject: "?car", Predicate: "type", Object: "Automobile"},
		{Subject: "?car", Predicate: "assembly", Object: "Germany"},
	}}
	bs, err := Eval(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	cars := Project(bs, "?car")
	if len(cars) != 2 {
		t.Fatalf("got %d cars, want 2 (BMW_320, Audi_TT)", len(cars))
	}
	names := map[string]bool{}
	for _, u := range cars {
		names[g.NodeName(u)] = true
	}
	if !names["BMW_320"] || !names["Audi_TT"] {
		t.Errorf("cars = %v", names)
	}
}

func TestEvalTwoHopSchema(t *testing.T) {
	g := carsGraph()
	q := Query{Patterns: []Pattern{
		{Subject: "?car", Predicate: "type", Object: "Automobile"},
		{Subject: "?car", Predicate: "assembly", Object: "?city"},
		{Subject: "?city", Predicate: "type", Object: "City"},
		{Subject: "?city", Predicate: "country", Object: "Germany"},
	}}
	bs, err := Eval(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	cars := Project(bs, "?car")
	if len(cars) != 1 || g.NodeName(cars[0]) != "BMW_Z4" {
		t.Fatalf("2-hop schema should find only BMW_Z4, got %d results", len(cars))
	}
}

func TestEvalDirectionality(t *testing.T) {
	g := carsGraph()
	// Reversed direction must not match: Germany -assembly-> ?car.
	q := Query{Patterns: []Pattern{
		{Subject: "Germany", Predicate: "assembly", Object: "?car"},
	}}
	bs, err := Eval(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Errorf("reversed pattern matched %d results, want 0", len(bs))
	}
}

func TestEvalGroundPattern(t *testing.T) {
	g := carsGraph()
	bs, err := Eval(g, Query{Patterns: []Pattern{
		{Subject: "BMW_320", Predicate: "assembly", Object: "Germany"},
	}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("ground true pattern: %d results, want 1", len(bs))
	}
	bs, err = Eval(g, Query{Patterns: []Pattern{
		{Subject: "BMW_320", Predicate: "assembly", Object: "France"},
	}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Error("ground false pattern should yield nothing")
	}
}

func TestEvalUnknownTerms(t *testing.T) {
	g := carsGraph()
	for _, q := range []Query{
		{Patterns: []Pattern{{Subject: "?x", Predicate: "nosuchpred", Object: "Germany"}}},
		{Patterns: []Pattern{{Subject: "?x", Predicate: "type", Object: "Spaceship"}}},
		{Patterns: []Pattern{{Subject: "Atlantis", Predicate: "assembly", Object: "?x"}}},
	} {
		bs, err := Eval(g, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(bs) != 0 {
			t.Errorf("query %v matched %d, want 0", q, len(bs))
		}
	}
}

func TestEvalErrors(t *testing.T) {
	g := carsGraph()
	if _, err := Eval(g, Query{}, 0); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := Eval(g, Query{Patterns: []Pattern{{Subject: "?x", Predicate: "?p", Object: "?y"}}}, 0); err == nil {
		t.Error("variable predicate should fail")
	}
	if _, err := Eval(g, Query{Patterns: []Pattern{{Subject: "", Predicate: "p", Object: "?y"}}}, 0); err == nil {
		t.Error("empty term should fail")
	}
}

func TestEvalLimit(t *testing.T) {
	g := carsGraph()
	q := Query{Patterns: []Pattern{
		{Subject: "?car", Predicate: "type", Object: "Automobile"},
	}}
	bs, err := Eval(g, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Errorf("limit 2: got %d", len(bs))
	}
}

func TestEvalBothVariablesFree(t *testing.T) {
	g := carsGraph()
	q := Query{Patterns: []Pattern{
		{Subject: "?a", Predicate: "assembly", Object: "?b"},
	}}
	bs, err := Eval(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 4 {
		t.Errorf("free-free scan found %d, want 4 assembly edges", len(bs))
	}
}

func TestEvalDeterministicOrder(t *testing.T) {
	g := carsGraph()
	q := Query{Patterns: []Pattern{
		{Subject: "?car", Predicate: "assembly", Object: "Germany"},
	}}
	a, _ := Eval(g, q, 0)
	b, _ := Eval(g, q, 0)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i]["?car"] != b[i]["?car"] {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestProjectDedup(t *testing.T) {
	bs := []Binding{{"?x": 1, "?y": 2}, {"?x": 1, "?y": 3}, {"?x": 4}}
	got := Project(bs, "?x")
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("Project = %v", got)
	}
}
