// Shard persistence: a small versioned wrapper around the kg binary
// snapshot codec. A shard file is the shard meta (index, shard count,
// halo) plus the node/edge mappings back into the base graph, CRC-32C
// checksummed, followed by the shard graph as a regular kg snapshot — so
// loading a shard costs one mapping decode plus the same fast snapshot
// read the whole-graph cold start uses, and shards of a big graph can be
// loaded individually and in parallel.

package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"semkg/internal/kg"
)

// shardMagic opens every shard file. Distinct from the kg snapshot magic
// so the two formats cannot be confused.
var shardMagic = [8]byte{'S', 'E', 'M', 'K', 'G', 'S', 'H', 'D'}

// shardVersion is the current shard file format version.
const shardVersion = 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteShard serializes one shard (graph, mappings and partition meta) to
// w. Output is deterministic: equal shards produce identical bytes.
func WriteShard(w io.Writer, s *Shard) error {
	if s == nil || s.Graph == nil {
		return fmt.Errorf("shard: nil shard")
	}
	header := make([]byte, 0, 8+4*6+4*len(s.nodeGlobal)+4*len(s.edgeGlobal))
	header = append(header, shardMagic[:]...)
	header = binary.LittleEndian.AppendUint32(header, shardVersion)
	header = binary.LittleEndian.AppendUint32(header, uint32(s.Index))
	header = binary.LittleEndian.AppendUint32(header, uint32(s.Shards))
	header = binary.LittleEndian.AppendUint32(header, uint32(s.Halo))
	header = binary.LittleEndian.AppendUint32(header, uint32(len(s.nodeGlobal)))
	header = binary.LittleEndian.AppendUint32(header, uint32(len(s.edgeGlobal)))
	for _, id := range s.nodeGlobal {
		header = binary.LittleEndian.AppendUint32(header, uint32(id))
	}
	for _, id := range s.edgeGlobal {
		header = binary.LittleEndian.AppendUint32(header, uint32(id))
	}
	// The CRC covers everything after magic+version, mirroring kg snapshots.
	crc := crc32.Checksum(header[12:], crcTable)
	header = binary.LittleEndian.AppendUint32(header, crc)
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("shard: writing shard header: %w", err)
	}
	return kg.WriteSnapshot(w, s.Graph)
}

// ReadShard reads a shard written by WriteShard. Malformed input yields
// errors, never panics; the embedded graph goes through the validating
// kg.ReadSnapshot decoder. The returned shard's mappings are structurally
// checked (sizes, ascending order) — cross-checking against a base graph
// happens in Assemble.
func ReadShard(r io.Reader) (*Shard, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("shard: reading shard header: %w", err)
	}
	if [8]byte(head[:8]) != shardMagic {
		return nil, fmt.Errorf("shard: bad magic %q (not a shard file)", head[:8])
	}
	if v := binary.LittleEndian.Uint32(head[8:12]); v != shardVersion {
		return nil, fmt.Errorf("shard: unsupported shard format version %d (want %d)", v, shardVersion)
	}
	var fixed [20]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("shard: truncated shard header: %w", err)
	}
	index := int(binary.LittleEndian.Uint32(fixed[0:4]))
	shards := int(binary.LittleEndian.Uint32(fixed[4:8]))
	halo := int(binary.LittleEndian.Uint32(fixed[8:12]))
	nNodes := int(binary.LittleEndian.Uint32(fixed[12:16]))
	nEdges := int(binary.LittleEndian.Uint32(fixed[16:20]))
	if shards < 1 || index < 0 || index >= shards || halo < 1 {
		return nil, fmt.Errorf("shard: corrupt shard meta (index %d of %d, halo %d)", index, shards, halo)
	}
	const maxIDs = 1 << 30 // ids are int32; anything larger is corrupt
	if nNodes < 0 || nEdges < 0 || nNodes > maxIDs || nEdges > maxIDs {
		return nil, fmt.Errorf("shard: corrupt shard mapping sizes (%d nodes, %d edges)", nNodes, nEdges)
	}
	// Copy the mappings incrementally rather than pre-allocating from the
	// claimed counts: a corrupt or hostile header can claim gigabytes, and
	// the allocation must stay proportional to the bytes actually present
	// (a truncated file then fails cheaply, before the CRC).
	var bodyBuf bytes.Buffer
	if _, err := io.CopyN(&bodyBuf, r, int64(4*(nNodes+nEdges)+4)); err != nil {
		return nil, fmt.Errorf("shard: truncated shard mappings: %w", err)
	}
	body := bodyBuf.Bytes()
	crc := crc32.Checksum(fixed[:], crcTable)
	crc = crc32.Update(crc, crcTable, body[:len(body)-4])
	if got := binary.LittleEndian.Uint32(body[len(body)-4:]); got != crc {
		return nil, fmt.Errorf("shard: shard header checksum mismatch (file %08x, computed %08x)", got, crc)
	}
	nodeGlobal := make([]kg.NodeID, nNodes)
	for i := range nodeGlobal {
		nodeGlobal[i] = kg.NodeID(binary.LittleEndian.Uint32(body[4*i:]))
		if i > 0 && nodeGlobal[i] <= nodeGlobal[i-1] {
			return nil, fmt.Errorf("shard: node mapping not strictly ascending at %d", i)
		}
	}
	edgeGlobal := make([]kg.EdgeID, nEdges)
	off := 4 * nNodes
	for i := range edgeGlobal {
		edgeGlobal[i] = kg.EdgeID(binary.LittleEndian.Uint32(body[off+4*i:]))
		if i > 0 && edgeGlobal[i] <= edgeGlobal[i-1] {
			return nil, fmt.Errorf("shard: edge mapping not strictly ascending at %d", i)
		}
	}
	g, err := kg.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("shard: reading shard graph: %w", err)
	}
	if g.NumNodes() != nNodes || g.NumEdges() != nEdges {
		return nil, fmt.Errorf("shard: shard graph has %d nodes / %d edges, mappings cover %d / %d",
			g.NumNodes(), g.NumEdges(), nNodes, nEdges)
	}
	sh := &Shard{
		Index:      index,
		Shards:     shards,
		Halo:       halo,
		Graph:      g,
		nodeGlobal: nodeGlobal,
		edgeGlobal: edgeGlobal,
	}
	for local := range nodeGlobal {
		if sh.Owned(kg.NodeID(local)) {
			sh.ownedCount++
		}
	}
	return sh, nil
}
