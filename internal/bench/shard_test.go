package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"semkg/internal/datagen"
	"semkg/internal/embed"
)

// TestRunShardShape is the shard-experiment acceptance smoke: the
// artifact covers the 1/2/4/8 curve, work is conserved across partitions,
// balance improves with shard count, and the modeled speedup at 4 shards
// clears the 1.5x bar on the multi-sub-query workload.
func TestRunShardShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an embedding; skipped in -short")
	}
	env, err := Cached(Config{
		Profile: datagen.DBpediaLike(0.2),
		Embed:   embed.Config{Dim: 24, Epochs: 60, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunShard(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rows); got != 4 {
		t.Fatalf("rows = %d, want 4 (1/2/4/8 shards)", got)
	}
	if res.BaselineUs <= 0 {
		t.Fatal("no baseline measurement")
	}
	for i, row := range res.Rows {
		if row.WorkTotal <= 0 || row.Balance <= 0 || row.Balance > 1.0001 {
			t.Fatalf("row %d: degenerate work accounting %+v", i, row)
		}
		if row.ReplicationFactor < 1 || row.ReplicationFactor > float64(row.Shards)+0.001 {
			t.Fatalf("row %d: replication factor %v outside [1, shards]", i, row.ReplicationFactor)
		}
	}
	var at4 *ShardRow
	for i := range res.Rows {
		if res.Rows[i].Shards == 4 {
			at4 = &res.Rows[i]
		}
	}
	if at4 == nil {
		t.Fatal("no 4-shard row")
	}
	if at4.Speedup < 1.5 {
		t.Fatalf("modeled end-to-end speedup at 4 shards = %.2fx, want >= 1.5x (balance %.2f, overhead %+.1f%%)",
			at4.Speedup, at4.Balance, at4.MeasuredOverheadPct)
	}

	path := filepath.Join(t.TempDir(), "BENCH_shard.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Methodology == "" {
		t.Fatal("artifact is missing its methodology note")
	}
	if res.Render().String() == "" {
		t.Fatal("empty rendering")
	}
}
