package main

import (
	"context"
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/kg"
	"semkg/internal/replica"
	"semkg/internal/serve"
)

// replState holds a node's replication role. A semkgd started without
// -follow is a primary: its /v1/replicate endpoint streams commits, and
// ingestion routes through the primary's commit log. A -follow node is
// a read-only follower until POST /v1/promote flips it — the warm
// failover move when the primary dies.
type replState struct {
	srv       *serve.Engine
	advertise string
	maxLog    int

	mu         sync.Mutex
	primary    *replica.Primary
	follower   *replica.Follower
	stopFollow context.CancelFunc
}

// newPrimaryState wraps srv as a replication primary.
func newPrimaryState(srv *serve.Engine, advertise string, maxLog int) *replState {
	rs := &replState{srv: srv, advertise: advertise, maxLog: maxLog}
	rs.primary = replica.NewPrimary(srv, replica.Config{
		Advertise: advertise, MaxLogStatements: maxLog,
	})
	return rs
}

// newFollowerState wraps srv as a follower of the primary at source and
// starts the tail loop.
func newFollowerState(srv *serve.Engine, source, advertise string, maxLog int) *replState {
	rs := &replState{srv: srv, advertise: advertise, maxLog: maxLog}
	rs.follower = replica.NewFollower(srv, replica.FollowerConfig{Source: source})
	ctx, cancel := context.WithCancel(context.Background())
	rs.stopFollow = cancel
	go rs.follower.Run(ctx)
	return rs
}

// role reports "primary" or "follower".
func (rs *replState) role() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.follower != nil {
		return "follower"
	}
	return "primary"
}

func (rs *replState) currentPrimary() *replica.Primary {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.primary
}

func (rs *replState) currentFollower() *replica.Follower {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.follower
}

// promote flips a follower to primary under a fresh epoch. It stops the
// tail loop first: a promoted node must not keep applying the dead
// primary's stream under its own feet. Reports false if already primary.
func (rs *replState) promote() (*replica.Primary, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.follower == nil {
		return rs.primary, false
	}
	rs.stopFollow()
	rs.primary = rs.follower.Promote(replica.Config{
		Advertise: rs.advertise, MaxLogStatements: rs.maxLog,
	})
	rs.follower = nil
	rs.stopFollow = nil
	return rs.primary, true
}

// close stops the tail loop or wakes the primary's streams, for
// shutdown.
func (rs *replState) close() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.stopFollow != nil {
		rs.stopFollow()
	}
	if rs.primary != nil {
		rs.primary.Close()
	}
}

// healthz returns the replication block for /healthz: role, epoch, and
// for followers the head/lag view that tells an operator how far behind
// this node is serving.
func (rs *replState) healthz() map[string]any {
	rs.mu.Lock()
	f, p := rs.follower, rs.primary
	rs.mu.Unlock()
	if f != nil {
		st := f.Stats()
		return map[string]any{
			"role":       "follower",
			"synced":     st.Synced,
			"epoch":      st.Epoch,
			"generation": st.Generation,
			"head":       st.Head,
			"lag":        st.Lag,
			"reconnects": st.Reconnects,
			"resyncs":    st.Resyncs,
			"primary":    st.Primary,
		}
	}
	return map[string]any{
		"role":  "primary",
		"epoch": p.Epoch(),
		"head":  p.Head(),
		"floor": p.Floor(),
	}
}

// currentRepl backs the "semkgd_replica" expvar; registration is
// guarded because tests build many muxes.
var (
	currentRepl        atomic.Pointer[replState]
	publishReplicaOnce sync.Once
)

func publishReplicaStats() {
	publishReplicaOnce.Do(func() {
		expvar.Publish("semkgd_replica", expvar.Func(func() any {
			if rs := currentRepl.Load(); rs != nil {
				return rs.healthz()
			}
			return nil
		}))
	})
}

// handleReplicate streams the replication feed (primaries only;
// followers answer 503 so a misconfigured follower-of-follower chain
// fails loudly instead of silently serving stale generations).
func (s *server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "replication is not enabled on this node"})
		return
	}
	p := s.repl.currentPrimary()
	if s.repl.role() != "primary" || p == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "not a primary; followers do not re-stream"})
		return
	}
	p.ServeHTTP(w, r)
}

// handlePromote flips a follower to primary. Idempotence: promoting a
// primary is a 409, so an orchestrator retrying the call can tell "I
// won" from "someone else already did".
func (s *server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	if s.repl == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "replication is not enabled on this node"})
		return
	}
	p, promoted := s.repl.promote()
	if !promoted {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "already primary", "epoch": p.Epoch()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role": "primary", "epoch": p.Epoch(), "generation": p.Head()})
}

// runCompactor periodically writes the served graph as an atomic binary
// snapshot, so a restart after hours of live ingestion cold-starts from
// a recent generation instead of replaying everything. Writes are
// skipped while the generation is unchanged.
func runCompactor(ctx context.Context, srv *serve.Engine, path string, every time.Duration, logf func(string, ...any)) {
	var lastGen uint64
	wrote := false
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		eng, gen := srv.Current()
		if wrote && gen == lastGen {
			continue
		}
		if err := kg.WriteSnapshotFile(path, eng.Graph()); err != nil {
			logf("semkgd: snapshot compactor: %v", err)
			continue
		}
		lastGen, wrote = gen, true
		logf("semkgd: snapshot compactor: wrote %s at generation %d", path, gen)
	}
}
