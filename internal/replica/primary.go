// Package replica implements primary/follower replication for the
// serving layer: a primary streams committed deltas (and full snapshots
// for bootstrap and catch-up) to followers over the NDJSON wire format
// of internal/api, followers apply them through the generation-gated
// serve.Apply/serve.RebuildGraph path, and a follower can be promoted
// to primary when the old primary dies.
//
// Design rules, in priority order:
//
//  1. Commits never block on followers. The primary keeps one shared,
//     bounded commit log; each streaming connection holds only a cursor
//     into it. A follower too slow to keep a cursor above the log's
//     compaction floor is dropped to a full snapshot resync instead of
//     back-pressuring writers.
//  2. Followers publish only whole commits. A stream severed mid-batch
//     discards the partial batch and resumes from the last committed
//     generation — convergence is property-tested against snapshot-byte
//     equality (see internal/serve's replay test and the chaos test
//     here).
//  3. Generations are meaningful only within an epoch (one primary
//     incarnation). A follower reconnecting across epochs — after a
//     promotion — always takes a snapshot resync.
package replica

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"semkg/internal/api"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

// DefaultMaxLogStatements bounds the primary's in-memory commit log.
// When the total statement count exceeds it, the oldest commits are
// compacted away and followers resuming from before the new floor take
// a snapshot resync.
const DefaultMaxLogStatements = 1 << 16

// commitRec is one committed delta in the log: the statements that,
// replayed over the previous generation, produce generation Gen.
type commitRec struct {
	gen   uint64
	stmts []kg.Statement
}

// Primary owns the commit path of a replicated serving node: every
// mutation goes through Commit, which applies it to the local serve
// engine and appends the statement log for followers.
type Primary struct {
	srv       *serve.Engine
	epoch     string
	advertise string
	maxLog    int

	mu     sync.Mutex
	log    []commitRec
	floor  uint64 // lowest generation resumable from the log
	logLen int    // total statements across log
	notify chan struct{}
	closed bool
}

// Config configures a Primary.
type Config struct {
	// Advertise is the primary's externally reachable base URL, sent in
	// the hello frame so followers and tooling can discover it.
	Advertise string
	// MaxLogStatements bounds the commit log; 0 means
	// DefaultMaxLogStatements.
	MaxLogStatements int
	// Epoch overrides the generated epoch string (tests only).
	Epoch string
}

// NewPrimary wraps srv as the replication primary. The epoch is a fresh
// random identity: generations minted by this primary are comparable
// only to its own.
func NewPrimary(srv *serve.Engine, cfg Config) *Primary {
	epoch := cfg.Epoch
	if epoch == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("replica: epoch entropy: %v", err))
		}
		epoch = hex.EncodeToString(b[:])
	}
	maxLog := cfg.MaxLogStatements
	if maxLog <= 0 {
		maxLog = DefaultMaxLogStatements
	}
	_, gen := srv.Current()
	return &Primary{
		srv:       srv,
		epoch:     epoch,
		advertise: cfg.Advertise,
		maxLog:    maxLog,
		floor:     gen,
		notify:    make(chan struct{}),
	}
}

// Epoch returns this primary incarnation's identity.
func (p *Primary) Epoch() string { return p.epoch }

// Serve returns the underlying serving engine.
func (p *Primary) Serve() *serve.Engine { return p.srv }

// Head returns the current committed generation.
func (p *Primary) Head() uint64 {
	_, gen := p.srv.Current()
	return gen
}

// Commit applies d through the serving engine and, if it bumped the
// generation, appends its statement log for followers. The log append
// happens under the primary's lock together with the Apply, so the log
// order is exactly the generation order; streaming connections are only
// notified, never waited on.
func (p *Primary) Commit(d *kg.Delta) (serve.ApplyInfo, error) {
	stmts := append([]kg.Statement(nil), d.Statements()...)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return serve.ApplyInfo{}, fmt.Errorf("replica: primary closed")
	}
	before := p.srv.Generation()
	info, err := p.srv.Apply(d)
	if err != nil {
		return info, err
	}
	// Gate on the generation actually bumping, not on len(stmts): a
	// delta can record intern-only statements yet still be Empty() (a
	// no-op re-declaration), and logging it would mint a duplicate
	// generation entry.
	if info.Generation == before {
		return info, nil
	}
	p.log = append(p.log, commitRec{gen: info.Generation, stmts: stmts})
	p.logLen += len(stmts)
	p.compactLocked()
	close(p.notify)
	p.notify = make(chan struct{})
	return info, nil
}

// compactLocked drops the oldest commits while the log exceeds the
// statement budget, raising the resumable floor. Callers hold p.mu.
func (p *Primary) compactLocked() {
	for len(p.log) > 1 && p.logLen > p.maxLog {
		p.logLen -= len(p.log[0].stmts)
		p.floor = p.log[0].gen
		p.log = p.log[1:]
	}
}

// Floor returns the lowest generation a follower can resume from
// without a snapshot resync.
func (p *Primary) Floor() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.floor
}

// Close wakes every streaming connection so it can observe closure and
// return. It does not close the serve engine.
func (p *Primary) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.notify)
	p.notify = make(chan struct{})
}

// after returns the commits with generation > from, or ok=false if from
// is below the compaction floor (the caller must snapshot-resync).
// The returned slice aliases the log; records are immutable once
// appended.
func (p *Primary) after(from uint64) (recs []commitRec, head uint64, wait <-chan struct{}, ok bool, closed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	head = p.srv.Generation()
	if p.closed {
		return nil, head, nil, true, true
	}
	if from < p.floor {
		return nil, head, nil, false, false
	}
	i := 0
	for i < len(p.log) && p.log[i].gen <= from {
		i++
	}
	return p.log[i:], head, p.notify, true, false
}

// ServeHTTP streams the replication feed: hello, then either a snapshot
// batch (bootstrap or floor fallback) or resumed delta batches, then
// live delta batches and heartbeat pings as commits land. Query
// parameters: from=<generation> and epoch=<epoch> for resumption; a
// missing or foreign epoch forces a snapshot.
func (p *Primary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)

	var from uint64
	resumable := false
	if r.URL.Query().Get("epoch") == p.epoch {
		if v, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64); err == nil {
			from, resumable = v, true
		}
	}

	writeFrame := func(f api.RepFrame) error {
		line, err := api.EncodeRepFrame(f)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	writeStmt := func(st kg.Statement) error {
		if st.P == "" {
			return writeFrame(api.RepFrame{Frame: api.RepNode, Name: st.S})
		}
		line, err := api.EncodeIngestTriple(api.IngestTriple{S: st.S, P: st.P, O: st.O})
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	flush := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	if err := writeFrame(api.RepFrame{
		Frame: api.RepHello, Generation: p.Head(),
		Epoch: p.epoch, Advertise: p.advertise,
	}); err != nil {
		return
	}

	cursor := from
	if !resumable || func() bool { _, _, _, ok, _ := p.after(cursor); return !ok }() {
		// Snapshot batch: dump the engine's current graph in canonical
		// statement order; the follower rebuilds from empty and serves
		// at the dumped generation.
		eng, gen := p.srv.Current()
		if err := writeFrame(api.RepFrame{Frame: api.RepSnapshot, Generation: gen}); err != nil {
			return
		}
		err := kg.ForEachStatement(eng.Graph(), writeStmt)
		if err != nil {
			return
		}
		if err := writeFrame(api.RepFrame{Frame: api.RepCommit, Generation: gen}); err != nil {
			return
		}
		if err := flush(); err != nil {
			return
		}
		cursor = gen
	}

	ctx := r.Context()
	for {
		recs, head, wait, ok, closed := p.after(cursor)
		if closed {
			return
		}
		if !ok {
			// Compacted past the cursor mid-stream (slow follower):
			// force the client to reconnect and take a snapshot. Ending
			// the stream is the degradation — never queuing per
			// follower, never blocking commits.
			return
		}
		for _, rec := range recs {
			if err := writeFrame(api.RepFrame{Frame: api.RepDelta, Generation: rec.gen}); err != nil {
				return
			}
			for _, st := range rec.stmts {
				if err := writeStmt(st); err != nil {
					return
				}
			}
			if err := writeFrame(api.RepFrame{Frame: api.RepCommit, Generation: rec.gen}); err != nil {
				return
			}
			cursor = rec.gen
		}
		if err := writeFrame(api.RepFrame{Frame: api.RepPing, Generation: head}); err != nil {
			return
		}
		if err := flush(); err != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wait:
		}
	}
}
