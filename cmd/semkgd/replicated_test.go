package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"semkg/internal/kg"
	"semkg/internal/serve"
)

// emptyServe builds the serving engine a bootstrapping follower starts
// with: an empty graph, rebuilt from the primary's snapshot stream.
func emptyServe(t *testing.T) *serve.Engine {
	t.Helper()
	eng, err := testEngineBuilder(t)(kg.Empty())
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(eng, serve.Config{Build: testEngineBuilder(t)})
}

// TestReplicatedPrimaryFollower drives the full semkgd topology through
// HTTP: ingest on the primary, replication to a follower, read-only
// enforcement, healthz lag reporting, and warm failover via promotion.
func TestReplicatedPrimaryFollower(t *testing.T) {
	srvP := serve.New(testEngine(t), serve.Config{Build: testEngineBuilder(t)})
	rsP := newPrimaryState(srvP, "http://primary.test", 0)
	defer rsP.close()
	tsP := httptest.NewServer(newMuxReplicated(srvP, defaultMaxIngestBytes, rsP))
	defer tsP.Close()

	srvF := emptyServe(t)
	rsF := newFollowerState(srvF, tsP.URL, "", 0)
	defer rsF.close()
	tsF := httptest.NewServer(newMuxReplicated(srvF, defaultMaxIngestBytes, rsF))
	defer tsF.Close()

	// Ingest on the primary: the batch commits through the replication
	// log and streams to the follower.
	resp := post(t, tsP, "/v1/ingest",
		`{"s":"BMW_i8","p":"type","o":"Automobile"}`+"\n"+
			`{"s":"BMW_i8","p":"assembly","o":"Germany"}`+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rsF.currentFollower().WaitSynced(ctx, rsP.currentPrimary().Head()); err != nil {
		t.Fatalf("follower never synced: %v", err)
	}

	// The follower serves the ingested entity.
	resp = post(t, tsF, "/v1/search", strings.NewReplacer("%s", "").Replace(q117Body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower search status %d", resp.StatusCode)
	}
	var res struct {
		Answers []struct {
			Entity string `json:"entity"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, a := range res.Answers {
		if a.Entity == "BMW_i8" {
			found = true
		}
	}
	if !found {
		t.Fatalf("follower does not serve the replicated entity: %+v", res)
	}

	// Writes to a follower are rejected; it does not re-stream either.
	resp = post(t, tsF, "/v1/ingest", `{"s":"X","p":"assembly","o":"Germany"}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower ingest status %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()
	rresp, err := http.Get(tsF.URL + "/v1/replicate")
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower /v1/replicate status %d, want 503", rresp.StatusCode)
	}
	rresp.Body.Close()

	// healthz carries the replication block.
	var health struct {
		Replication struct {
			Role    string `json:"role"`
			Synced  bool   `json:"synced"`
			Lag     uint64 `json:"lag"`
			Primary string `json:"primary"`
		} `json:"replication"`
	}
	hresp, err := http.Get(tsF.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Replication.Role != "follower" || !health.Replication.Synced {
		t.Fatalf("follower healthz replication = %+v", health.Replication)
	}
	if health.Replication.Lag != 0 {
		t.Fatalf("follower lag = %d after sync", health.Replication.Lag)
	}
	if health.Replication.Primary != "http://primary.test" {
		t.Fatalf("advertised primary = %q", health.Replication.Primary)
	}

	// Promoting the primary is a conflict; promoting the follower flips
	// it to a writable primary under a fresh epoch.
	resp = post(t, tsP, "/v1/promote", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on primary status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	resp = post(t, tsF, "/v1/promote", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote on follower status %d", resp.StatusCode)
	}
	var prom struct {
		Role  string `json:"role"`
		Epoch string `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&prom); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prom.Role != "primary" || prom.Epoch == rsP.currentPrimary().Epoch() {
		t.Fatalf("promotion result %+v (old epoch %s)", prom, rsP.currentPrimary().Epoch())
	}

	// The promoted node accepts writes and streams replication.
	resp = post(t, tsF, "/v1/ingest", `{"s":"Taycan","p":"assembly","o":"Germany"}`+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(t, tsF, "/v1/promote", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second promote status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestCompactorWritesOnChange: the background compactor writes the
// snapshot when the generation moves and skips rewrites while it is
// unchanged.
func TestCompactorWritesOnChange(t *testing.T) {
	srv := serve.New(testEngine(t), serve.Config{Build: testEngineBuilder(t)})
	path := t.TempDir() + "/live.snap"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go runCompactor(ctx, srv, path, 5*time.Millisecond, func(string, ...any) {})

	waitFile := func(prev []byte) []byte {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			data, err := os.ReadFile(path)
			if err == nil && len(data) > 0 && !bytes.Equal(data, prev) {
				return data
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("compactor never wrote a new snapshot")
		return nil
	}

	first := waitFile(nil)
	g1, err := kg.ReadSnapshot(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("compactor snapshot unreadable: %v", err)
	}
	if g1.NumNodes() != srv.Engine().Graph().NumNodes() {
		t.Fatalf("snapshot has %d nodes, served graph %d", g1.NumNodes(), srv.Engine().Graph().NumNodes())
	}

	d := srv.NewDelta()
	if err := d.ApplyTriple("Compacted", "assembly", "Germany"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(d); err != nil {
		t.Fatal(err)
	}
	second := waitFile(first)
	g2, err := kg.ReadSnapshot(bytes.NewReader(second))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeByName("Compacted") == kg.NoNode {
		t.Fatal("compacted snapshot misses the applied delta")
	}
}
