// Package semgraph materializes the semantic graph SG_Q of the paper
// (Definition 5, Section IV-B) lazily: instead of weighting every edge of
// the knowledge graph up front, a Weighter computes the semantic weight
// w = sim(L_Q(e), L(e')) (Eq. 5) on demand while the A* search explores, and
// caches the per-node maximum adjacent weight m(u_i) used by the heuristic
// pss estimation (Eq. 7).
//
// A Weighter is bound to one sub-query graph (its sequence of query-edge
// predicates); create one per sub-query search. It is not safe for
// concurrent use — each search goroutine owns its Weighter.
package semgraph

import (
	"fmt"

	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/strutil"
)

// MinWeight is the clamp floor for semantic weights. The pss machinery
// (Lemma 1, Theorem 1) requires weights in (0, 1]; anything at or below
// the floor is semantically unrelated and will be pruned by any
// reasonable τ.
const MinWeight = 1e-6

// weight maps a cosine similarity in [-1, 1] to the edge weight in (0, 1].
// The paper applies Eq. 5 (raw cosine) to a space trained on millions of
// triples, where synonym predicates reach cosines of 0.8-0.98. At
// reproduction scale cosines land lower for the same semantic
// relationships, so we use the standard angular normalization
// (cos+1)/2 — identical ordering, and the τ threshold keeps the paper's
// absolute semantics (τ = 0.8 keeps near-synonyms, prunes unrelated
// predicates). See DESIGN.md (Substitutions).
func weight(cos float64) float64 {
	return clamp((cos + 1) / 2)
}

// Weighter computes semantic edge weights for one sub-query graph.
type Weighter struct {
	g *kg.Graph
	// w[seg][pred] is the clamped similarity between the sub-query's
	// seg-th query edge and graph predicate pred.
	w [][]float64
	// suffix[u] caches, per segment s, the maximum over segments s' >= s
	// of the maximum weight among u's incident edges — the m(u_i) bound
	// of Lemma 1, generalized to multi-edge sub-queries (see DESIGN.md).
	suffix map[kg.NodeID][]float64
}

// NewWeighter builds a Weighter for a sub-query whose query edges carry the
// given predicates, in path order. Each query predicate is resolved against
// the graph's predicate vocabulary: exact name match first, then the most
// string-similar predicate (the paper assumes query predicates come from
// the KG vocabulary; the fallback keeps mistyped predicates usable).
func NewWeighter(g *kg.Graph, space *embed.Space, predicates []string) (*Weighter, error) {
	if space.Len() != g.NumPredicates() {
		return nil, fmt.Errorf("semgraph: space has %d predicates, graph has %d", space.Len(), g.NumPredicates())
	}
	if len(predicates) == 0 {
		return nil, fmt.Errorf("semgraph: sub-query has no predicates")
	}
	wt := &Weighter{
		g:      g,
		w:      make([][]float64, len(predicates)),
		suffix: make(map[kg.NodeID][]float64),
	}
	for seg, name := range predicates {
		qp, err := ResolvePredicate(g, name)
		if err != nil {
			return nil, err
		}
		row := make([]float64, g.NumPredicates())
		for p := range row {
			row[p] = weight(space.Similarity(int(qp), p))
		}
		wt.w[seg] = row
	}
	return wt, nil
}

// ResolvePredicate maps a query predicate name to a graph predicate:
// exact match, else the most string-similar predicate name.
func ResolvePredicate(g *kg.Graph, name string) (kg.PredID, error) {
	if p := g.PredByName(name); p >= 0 {
		return p, nil
	}
	best, bestSim := kg.PredID(-1), -1.0
	for p := 0; p < g.NumPredicates(); p++ {
		if s := strutil.Similarity(name, g.PredName(kg.PredID(p))); s > bestSim {
			best, bestSim = kg.PredID(p), s
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("semgraph: predicate %q cannot be resolved (empty vocabulary)", name)
	}
	return best, nil
}

// Segments returns the number of query edges the Weighter serves.
func (w *Weighter) Segments() int { return len(w.w) }

// Weight returns the semantic weight of graph predicate p for the seg-th
// query edge, clamped to (0, 1].
func (w *Weighter) Weight(p kg.PredID, seg int) float64 { return w.w[seg][p] }

// NodeMax returns the m(u) bound for a search positioned at node u while
// matching the seg-th query edge: the maximum semantic weight among u's
// incident edges, taken over the current and all later query edges. This
// upper-bounds the weight product of any unexplored path suffix (Lemma 1).
func (w *Weighter) NodeMax(u kg.NodeID, seg int) float64 {
	sfx, ok := w.suffix[u]
	if !ok {
		sfx = w.computeSuffix(u)
		w.suffix[u] = sfx
	}
	return sfx[seg]
}

func (w *Weighter) computeSuffix(u kg.NodeID) []float64 {
	segs := len(w.w)
	perSeg := make([]float64, segs)
	for i := range perSeg {
		perSeg[i] = MinWeight
	}
	for _, h := range w.g.Neighbors(u) {
		for s := 0; s < segs; s++ {
			if wt := w.w[s][h.Pred]; wt > perSeg[s] {
				perSeg[s] = wt
			}
		}
	}
	// Suffix maximum so that NodeMax(u, s) bounds weights of the current
	// and all later segments.
	for s := segs - 2; s >= 0; s-- {
		if perSeg[s+1] > perSeg[s] {
			perSeg[s] = perSeg[s+1]
		}
	}
	return perSeg
}

func clamp(x float64) float64 {
	if x < MinWeight {
		return MinWeight
	}
	if x > 1 {
		return 1
	}
	return x
}
