package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestReaderSeverAtOffset(t *testing.T) {
	src := strings.NewReader("0123456789abcdef")
	r := Reader(src, NewScript(Point{After: 7, Op: Sever}))
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrSevered) {
		t.Fatalf("err = %v, want ErrSevered", err)
	}
	if string(got) != "0123456" {
		t.Fatalf("read %q before sever, want first 7 bytes", got)
	}
	// Sticky: the stream stays dead.
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Fatalf("post-sever read err = %v", err)
	}
}

func TestReaderTruncateIsCleanEOF(t *testing.T) {
	r := Reader(strings.NewReader("0123456789"), NewScript(Point{After: 4, Op: Truncate}))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncate must read as clean EOF, got %v", err)
	}
	if string(got) != "0123" {
		t.Fatalf("read %q, want %q", got, "0123")
	}
}

func TestReaderDelayThenContinue(t *testing.T) {
	r := Reader(strings.NewReader("0123456789"),
		NewScript(Point{After: 5, Op: Delay, Pause: 30 * time.Millisecond}))
	start := time.Now()
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "0123456789" {
		t.Fatalf("got %q err=%v", got, err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stream finished in %v, delay did not fire", d)
	}
}

func TestReaderSeverAtZero(t *testing.T) {
	r := Reader(strings.NewReader("payload"), NewScript(Point{After: 0, Op: Sever}))
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, ErrSevered) {
		t.Fatalf("err = %v", err)
	}
}

func TestScriptOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order script did not panic")
		}
	}()
	NewScript(Point{After: 9}, Point{After: 3})
}

func TestConnSeverClosesTransport(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := Conn(client, NewScript(Point{After: 3, Op: Sever}), nil)
	go server.Write([]byte("abcdef"))
	buf := make([]byte, 16)
	n, _ := fc.Read(buf)
	if n != 3 {
		t.Fatalf("read %d bytes before sever, want 3", n)
	}
	if _, err := fc.Read(buf); !errors.Is(err, ErrSevered) {
		t.Fatalf("err = %v", err)
	}
	// The underlying conn was closed, so the peer's next write fails.
	server.SetWriteDeadline(time.Now().Add(time.Second))
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("peer write succeeded after sever")
	}
}

func TestConnWriteScript(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := Conn(client, nil, NewScript(Point{After: 4, Op: Sever}))
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	n, err := fc.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrSevered) {
		t.Fatalf("err = %v", err)
	}
	if n != 4 {
		t.Fatalf("wrote %d bytes before sever, want 4", n)
	}
	if b := <-got; string(b) != "abcd" {
		t.Fatalf("peer received %q", b)
	}
}

// TestProxySeverMidStream: a proxied transfer severed by script at an
// exact byte offset delivers exactly that prefix and then a transport
// error; a clean reconnect through the same proxy succeeds.
func TestProxySeverMidStream(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789"), 100)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(c)
		}
	}()

	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetScript(func() *Script {
		return NewScript(Point{After: 137, Op: Sever})
	})

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(c)
	c.Close()
	if err == nil && len(got) == len(payload) {
		t.Fatal("sever never fired: full payload delivered cleanly")
	}
	if len(got) != 137 {
		t.Fatalf("received %d bytes, want exactly 137", len(got))
	}

	// Clean reconnect.
	p.SetScript(nil)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	got2, err := io.ReadAll(c2)
	if err != nil || !bytes.Equal(got2, payload) {
		t.Fatalf("reconnect read %d bytes err=%v, want full payload", len(got2), err)
	}
}

func TestProxySeverAll(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write([]byte("hi"))
				<-hold // keep the conn open until the test ends
			}(c)
		}
	}()
	defer close(hold)

	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	p.SeverAll()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded after SeverAll")
	}
}

func TestScheduleFiresAndCancels(t *testing.T) {
	fired := make(chan struct{})
	Schedule(5*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("scheduled kill never fired")
	}

	cancel := Schedule(time.Hour, func() { t.Error("cancelled kill fired") })
	if !cancel() {
		t.Fatal("cancel reported the kill already fired")
	}
}
