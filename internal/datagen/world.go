package datagen

import (
	"fmt"
	"math/rand"

	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/sparql"
	"semkg/internal/transform"
)

// Production schema identifiers: the ways an automobile connects to its
// production country, mirroring the schema table of the paper's Fig. 1.
const (
	schemaAssemblyDirect = iota // auto -assembly-> country
	schemaProductDirect         // auto -product-> country
	schemaAssemblyCity          // auto -assembly-> city -country-> country
	schemaCompanyDirect         // auto -manufacturer-> company -locationCountry-> country
	schemaCompanyCity           // auto -manufacturer-> company -location-> city -country-> country
	numProdSchemas
)

// prodSchemaWeights skews answers towards the direct schema, as in Fig. 1
// (234 direct vs 133/53/44 for the n-hop schemas).
var prodSchemaWeights = []float64{0.40, 0.10, 0.20, 0.15, 0.15}

// prodPreds is the production predicate cluster. Real KG predicates have
// loose ranges — DBpedia's manufacturer sometimes points at a country,
// assembly at a company — and this usage overlap on shared (head, tail)
// pairs is precisely what makes their TransE vectors similar (Fig. 6:
// "they have similar neighbour entities"). The generator therefore swaps
// the production predicate within the cluster with a small probability.
var prodPreds = []string{"assembly", "product", "manufacturer"}

// geoPreds is the location predicate cluster, mixed the same way for
// company→country edges.
var geoPreds = []string{"locationCountry", "country"}

// ProductionSchemas lists every forward predicate path from an Automobile
// to its production Country that the generator can emit: any production-
// cluster predicate to (a) the country directly, (b) a city of the
// country, or (c) a company of the country (which reaches its country via
// locationCountry/country or location+country). Used for ground-truth
// queries and the S4 baseline's pattern vocabulary. Direct 1-hop schemas
// come first (the gStore-recoverable subset).
var ProductionSchemas = buildProductionSchemas()

func buildProductionSchemas() [][]string {
	var out [][]string
	for _, p := range prodPreds {
		out = append(out, []string{p})
	}
	for _, p := range prodPreds {
		out = append(out, []string{p, "country"})
		out = append(out, []string{p, "locationCountry"})
		out = append(out, []string{p, "location", "country"})
	}
	return out
}

// autoInfo tracks the generated attributes of one automobile.
type autoInfo struct {
	name        string
	prodCountry string // country name
	schema      int
	designerNat string // designer's nationality country name ("" = none)
	engineCtr   string // engine manufacturer company's country ("" = none)
}

// Dataset is a generated benchmark world.
type Dataset struct {
	Profile Profile
	Graph   *kg.Graph
	Library *transform.Library

	// Simple is the main single-intention workload (one sub-query each).
	Simple []GenQuery
	// Medium and Complex hold the multi-sub-query workloads of Table VI.
	Medium  []GenQuery
	Complex []GenQuery
	// Table1 holds the four Q117 query-graph variants of Fig. 1/Table I
	// (shared truth: cars produced in the table-one country).
	Table1 []GenQuery

	// Clusters is the ground-truth predicate clustering, for validating
	// that the trained space recovers it.
	Clusters map[string][]string

	autos   []autoInfo
	table1C string // the country used by the Table I variants
}

// GenQuery is a benchmark query with its validation set.
type GenQuery struct {
	Name  string
	Graph *query.Graph
	// Focus is the query node whose bindings are the answers.
	Focus string
	// Truth is the validation set (entity names, unordered).
	Truth []string
	// SchemaCount is the number of distinct schemas covered by Truth.
	SchemaCount int
	// Complexity is the expected number of sub-query graphs (1..3).
	Complexity int
}

// Generate builds a deterministic world from the profile.
func Generate(p Profile) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	nm := newNamer(p)
	b := kg.NewBuilder(1024, 4096)
	d := &Dataset{Profile: p}

	// --- Countries and cities -----------------------------------------
	countries := make([]string, p.Countries)
	cities := make(map[string][]string, p.Countries)
	for i := range countries {
		c := nm.name(fmt.Sprintf("Country_%d", i))
		countries[i] = c
		b.AddNode(c, "Country")
		for j := 0; j < p.CitiesPerCtr; j++ {
			city := nm.name(fmt.Sprintf("City_%d_%d", i, j))
			b.AddNode(city, "City")
			b.AddEdge(b.AddNode(city, "City"), b.AddNode(c, "Country"), "country")
			cities[c] = append(cities[c], city)
		}
	}
	pickCountry := func() string { return countries[rng.Intn(len(countries))] }
	pickCity := func(c string) string { cs := cities[c]; return cs[rng.Intn(len(cs))] }
	// mix returns the primary predicate most of the time and a random
	// cluster sibling otherwise (loose-range usage overlap; see prodPreds).
	mix := func(primary string, cluster []string) string {
		if rng.Float64() < 0.8 {
			return primary
		}
		return cluster[rng.Intn(len(cluster))]
	}

	// --- Companies ------------------------------------------------------
	// Half are located in a country directly, half via a city; bucket them
	// per country so automobile schemas can pick a compatible company.
	// Every company carries several location-cluster edges to its country
	// and cities: companies are tightly glued to their geography, which is
	// what places manufacturer near the production cluster in the trained
	// space (a car's manufacturer is located where the car is assembled).
	companiesDirect := make(map[string][]string)
	companiesViaCity := make(map[string][]string)
	for k := 0; k < p.Companies; k++ {
		name := nm.name(fmt.Sprintf("Company_%d", k))
		id := b.AddNode(name, "Company")
		c := pickCountry()
		if k%2 == 0 {
			b.AddEdge(id, b.AddNode(c, "Country"), mix("locationCountry", geoPreds))
			companiesDirect[c] = append(companiesDirect[c], name)
		} else {
			b.AddEdge(id, b.AddNode(pickCity(c), "City"), "location")
			b.AddEdge(id, b.AddNode(c, "Country"), mix("locationCountry", geoPreds))
			companiesViaCity[c] = append(companiesViaCity[c], name)
		}
	}

	// --- People -----------------------------------------------------------
	peopleByNat := make(map[string][]string)
	people := make([]string, p.People)
	for m := range people {
		name := nm.name(fmt.Sprintf("Person_%d", m))
		people[m] = name
		id := b.AddNode(name, "Person")
		c := pickCountry()
		if rng.Float64() < 0.9 {
			b.AddEdge(id, b.AddNode(c, "Country"), "nationality")
		} else {
			b.AddEdge(id, b.AddNode(pickCity(c), "City"), "birthPlace")
		}
		peopleByNat[c] = append(peopleByNat[c], name)
	}

	// --- Engines ----------------------------------------------------------
	engines := make([]string, p.Engines)
	engineCtr := make(map[string]string)
	enginesByCtr := make(map[string][]string)
	for e := range engines {
		name := nm.name(fmt.Sprintf("Engine_%d", e))
		engines[e] = name
		id := b.AddNode(name, "Engine")
		// Engine manufacturers come from the direct-location companies so
		// their country is 2 hops away (engine->company->country).
		c := pickCountry()
		for len(companiesDirect[c]) == 0 {
			c = pickCountry()
		}
		comp := companiesDirect[c][rng.Intn(len(companiesDirect[c]))]
		b.AddEdge(id, b.AddNode(comp, "Company"), "manufacturer")
		engineCtr[name] = c
		enginesByCtr[c] = append(enginesByCtr[c], name)
	}

	// --- Automobiles -------------------------------------------------------
	d.autos = make([]autoInfo, p.Autos)
	for a := range d.autos {
		name := nm.name(fmt.Sprintf("Auto_%d", a))
		id := b.AddNode(name, "Automobile")
		c := pickCountry()
		schema := sampleSchema(rng)
		// Degrade to a direct schema when the country lacks a compatible
		// company.
		if schema == schemaCompanyDirect && len(companiesDirect[c]) == 0 {
			schema = schemaAssemblyDirect
		}
		if schema == schemaCompanyCity && len(companiesViaCity[c]) == 0 {
			schema = schemaAssemblyDirect
		}
		info := autoInfo{name: name, prodCountry: c, schema: schema}
		switch schema {
		case schemaAssemblyDirect:
			b.AddEdge(id, b.AddNode(c, "Country"), mix("assembly", prodPreds))
			// Real DBpedia frequently annotates the same car with both
			// production predicates; these co-occurrences are the signal
			// that pulls assembly and product together in the embedding
			// space (Fig. 6).
			if rng.Float64() < 0.4 {
				b.AddEdge(id, b.AddNode(c, "Country"), "product")
			}
		case schemaProductDirect:
			b.AddEdge(id, b.AddNode(c, "Country"), mix("product", prodPreds))
			if rng.Float64() < 0.4 {
				b.AddEdge(id, b.AddNode(c, "Country"), "assembly")
			}
		case schemaAssemblyCity:
			b.AddEdge(id, b.AddNode(pickCity(c), "City"), mix("assembly", prodPreds))
		case schemaCompanyDirect:
			comp := companiesDirect[c][rng.Intn(len(companiesDirect[c]))]
			b.AddEdge(id, b.AddNode(comp, "Company"), mix("manufacturer", prodPreds))
		case schemaCompanyCity:
			comp := companiesViaCity[c][rng.Intn(len(companiesViaCity[c]))]
			b.AddEdge(id, b.AddNode(comp, "Company"), mix("manufacturer", prodPreds))
		}
		// Cars with a direct production edge often also carry a
		// manufacturer triple; the company comes from the same country,
		// so the validation sets stay consistent.
		if schema <= schemaAssemblyCity && rng.Float64() < 0.5 && len(companiesDirect[c]) > 0 {
			comp := companiesDirect[c][rng.Intn(len(companiesDirect[c]))]
			b.AddEdge(id, b.AddNode(comp, "Company"), mix("manufacturer", prodPreds))
		}
		// Distractor relations: a designer of some nationality (the
		// semantically *wrong* route to a country) and an engine. Both
		// correlate with the production country half the time — German
		// cars tend to have German designers — which gives the
		// multi-constraint (Medium/Complex) workloads non-trivial answer
		// sets.
		if rng.Float64() < 0.6 {
			nat := c
			if rng.Float64() < 0.5 {
				nat = pickCountry()
			}
			if ppl := peopleByNat[nat]; len(ppl) > 0 {
				person := ppl[rng.Intn(len(ppl))]
				b.AddEdge(id, b.AddNode(person, "Person"), "designer")
				info.designerNat = nat
			}
		}
		if rng.Float64() < 0.5 && len(engines) > 0 {
			ec := c
			if rng.Float64() >= 0.5 || len(enginesByCtr[ec]) == 0 {
				ec = ""
			}
			var eng string
			if ec != "" {
				eng = enginesByCtr[ec][rng.Intn(len(enginesByCtr[ec]))]
			} else {
				eng = engines[rng.Intn(len(engines))]
			}
			b.AddEdge(id, b.AddNode(eng, "Engine"), "engine")
			info.engineCtr = engineCtr[eng]
		}
		d.autos[a] = info
	}

	// --- Soccer clubs -------------------------------------------------------
	for cIdx := 0; cIdx < p.Clubs; cIdx++ {
		name := nm.name(fmt.Sprintf("Club_%d", cIdx))
		id := b.AddNode(name, "SoccerClub")
		c := pickCountry()
		b.AddEdge(id, b.AddNode(pickCity(c), "City"), "ground")
		// Players.
		for k := 0; k < 2; k++ {
			p := people[rng.Intn(len(people))]
			b.AddEdge(b.AddNode(p, "Person"), id, "team")
		}
	}

	// --- Filler types (type-vocabulary padding) ---------------------------
	for t := 0; t < p.FillerTypes; t++ {
		typeName := fmt.Sprintf("Topic%02d", t)
		for x := 0; x < p.FillerPerType; x++ {
			name := nm.name(fmt.Sprintf("%s_%d", typeName, x))
			id := b.AddNode(name, typeName)
			// Loosely attached to the world via misc predicates.
			target := people[rng.Intn(len(people))]
			b.AddEdge(id, b.AddNode(target, "Person"), "associatedWith")
			if x > 0 {
				prev := nm.name(fmt.Sprintf("%s_%d", typeName, x-1))
				b.AddEdge(id, b.AddNode(prev, typeName), "linkedTo")
			}
		}
	}

	// --- Connectivity filler ------------------------------------------------
	// Random relatedTo edges among autos and people raise the average
	// degree and stress the τ-pruning; they never link an automobile to a
	// country, so validation sets stay unambiguous. Kept well below the
	// typed predicates' volume: at this scale an overwhelming random
	// predicate would smear the entity clusters TransE relies on.
	extra := p.Autos + p.People
	for i := 0; i < extra; i++ {
		var from, to string
		var ft, tt string
		if rng.Intn(2) == 0 {
			from, ft = d.autos[rng.Intn(len(d.autos))].name, "Automobile"
		} else {
			from, ft = people[rng.Intn(len(people))], "Person"
		}
		if rng.Intn(2) == 0 {
			to, tt = d.autos[rng.Intn(len(d.autos))].name, "Automobile"
		} else {
			to, tt = people[rng.Intn(len(people))], "Person"
		}
		if from == to {
			continue
		}
		b.AddEdge(b.AddNode(from, ft), b.AddNode(to, tt), "relatedTo")
	}

	d.Graph = b.Build()
	d.Library = buildLibrary(countries)
	d.Clusters = map[string][]string{
		"production": {"assembly", "product"},
		"corporate":  {"manufacturer", "locationCountry", "location"},
		"geography":  {"country"},
		"person":     {"nationality", "birthPlace", "designer"},
		"sports":     {"team", "ground"},
		"misc":       {"relatedTo", "associatedWith", "linkedTo"},
	}
	d.buildWorkloads(rng, countries)
	return d
}

func sampleSchema(rng *rand.Rand) int {
	x := rng.Float64()
	acc := 0.0
	for i, w := range prodSchemaWeights {
		acc += w
		if x < acc {
			return i
		}
	}
	return schemaAssemblyDirect
}

// buildLibrary assembles the synonym/abbreviation transformation library
// (the BabelNet substitute): type synonyms plus per-country abbreviations.
func buildLibrary(countries []string) *transform.Library {
	lib := transform.NewLibrary()
	lib.AddSynonyms("Car", "Auto", "Motorcar", "Vehicle", "Automobile")
	lib.AddSynonyms("Nation", "State", "Country")
	lib.AddSynonyms("Firm", "Corporation", "Company")
	lib.AddSynonyms("Motor", "Device", "Engine")
	lib.AddSynonyms("Footballclub", "SoccerClub")
	for i, c := range countries {
		lib.AddAbbreviation(fmt.Sprintf("CTR%d", i), c)
	}
	return lib
}

// ProducedInTruth evaluates the union of production schemas for a country
// through the SPARQL substrate and returns the validation set.
func ProducedInTruth(g *kg.Graph, country string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, schema := range ProductionSchemas {
		q := schemaQuery("Automobile", schema, country)
		bs, err := sparql.Eval(g, q, 0)
		if err != nil {
			continue
		}
		for _, u := range sparql.Project(bs, "?v0") {
			name := g.NodeName(u)
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}

// schemaQuery builds the conjunctive query for one forward predicate path
// from a focus type to an anchor entity.
func schemaQuery(focusType string, preds []string, anchor string) sparql.Query {
	q := sparql.Query{Patterns: []sparql.Pattern{
		{Subject: "?v0", Predicate: kg.TypePredicate, Object: focusType},
	}}
	cur := "?v0"
	for i, p := range preds {
		next := anchor
		if i < len(preds)-1 {
			next = fmt.Sprintf("?v%d", i+1)
		}
		q.Patterns = append(q.Patterns, sparql.Pattern{Subject: cur, Predicate: p, Object: next})
		cur = next
	}
	return q
}
